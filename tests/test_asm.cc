/** @file Unit tests for the two-pass assembler. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/decode.hh"

namespace
{

using namespace hpa;
using assembler::AsmError;
using assembler::assemble;
using isa::Opcode;

isa::StaticInst
first(const assembler::Program &p, size_t i = 0)
{
    return *isa::decode(p.code.at(i));
}

TEST(Assembler, EmptyProgram)
{
    auto p = assemble("");
    EXPECT_TRUE(p.code.empty());
    EXPECT_TRUE(p.data.empty());
}

TEST(Assembler, SingleOperate)
{
    auto p = assemble("add r1, r2, r3");
    ASSERT_EQ(p.code.size(), 1u);
    auto si = first(p);
    EXPECT_EQ(si.op, Opcode::ADD);
    EXPECT_EQ(si.ra, 1);
    EXPECT_EQ(si.rb, 2);
    EXPECT_EQ(si.rc, 3);
}

TEST(Assembler, LiteralOperand)
{
    auto si = first(assemble("xor r1, #255, r3"));
    EXPECT_TRUE(si.useLiteral);
    EXPECT_EQ(si.literal, 255);
}

TEST(Assembler, LiteralOutOfRangeRejected)
{
    EXPECT_THROW(assemble("add r1, #256, r3"), AsmError);
    EXPECT_THROW(assemble("add r1, #-1, r3"), AsmError);
}

TEST(Assembler, MemoryOperandForms)
{
    auto p = assemble("ldq r1, 16(r2)\nstq r3, -8(sp)\nldl r4, (r5)");
    EXPECT_EQ(first(p, 0).disp, 16);
    EXPECT_EQ(first(p, 1).disp, -8);
    EXPECT_EQ(first(p, 1).rb, 30);
    EXPECT_EQ(first(p, 2).disp, 0);
}

TEST(Assembler, DisplacementRangeChecked)
{
    EXPECT_THROW(assemble("ldq r1, 40000(r2)"), AsmError);
    EXPECT_NO_THROW(assemble("ldq r1, 32767(r2)"));
    EXPECT_NO_THROW(assemble("ldq r1, -32768(r2)"));
}

TEST(Assembler, BackwardBranchDisplacement)
{
    auto p = assemble("top: nop\nbne r1, top");
    // bne at 0x1004, target 0x1000: disp = (0x1000-0x1008)/4 = -2.
    EXPECT_EQ(first(p, 1).disp, -2);
}

TEST(Assembler, ForwardBranchDisplacement)
{
    auto p = assemble("beq r1, done\nnop\ndone: halt");
    EXPECT_EQ(first(p, 0).disp, 1);
}

TEST(Assembler, NumericBranchOperandIsRawDisp)
{
    auto p = assemble("br 5\nbeq r2, -3");
    EXPECT_EQ(first(p, 0).disp, 5);
    EXPECT_EQ(first(p, 1).disp, -3);
}

TEST(Assembler, BsrDefaultsToLinkRegister)
{
    auto p = assemble("bsr f\nf: halt");
    EXPECT_EQ(first(p, 0).op, Opcode::BSR);
    EXPECT_EQ(first(p, 0).ra, isa::LINK_REG);
}

TEST(Assembler, BsrExplicitLink)
{
    auto p = assemble("bsr r5, f\nf: halt");
    EXPECT_EQ(first(p, 0).ra, 5);
}

TEST(Assembler, JumpForms)
{
    auto p = assemble("jmp (r4)\njsr (r5)\njsr r7, (r5)\nret\nret (r9)");
    EXPECT_EQ(first(p, 0).op, Opcode::JMP);
    EXPECT_EQ(first(p, 0).ra, 31);
    EXPECT_EQ(first(p, 0).rb, 4);
    EXPECT_EQ(first(p, 1).ra, isa::LINK_REG);
    EXPECT_EQ(first(p, 2).ra, 7);
    EXPECT_EQ(first(p, 3).op, Opcode::RET);
    EXPECT_EQ(first(p, 3).rb, isa::LINK_REG);
    EXPECT_EQ(first(p, 4).rb, 9);
}

// --- Pseudo-instructions. ---

TEST(Assembler, NopExpandsToBisZero)
{
    auto si = first(assemble("nop"));
    EXPECT_EQ(si.op, Opcode::BIS);
    EXPECT_TRUE(si.isNop());
}

TEST(Assembler, MovClrNegNot)
{
    auto p = assemble("mov r1, r2\nclr r3\nneg r4, r5\nnot r6, r7");
    EXPECT_EQ(first(p, 0).op, Opcode::BIS);
    EXPECT_EQ(first(p, 0).ra, 1);
    EXPECT_EQ(first(p, 0).rb, 31);
    EXPECT_EQ(first(p, 1).rc, 3);
    EXPECT_EQ(first(p, 2).op, Opcode::SUB);
    EXPECT_EQ(first(p, 2).ra, 31);
    EXPECT_EQ(first(p, 3).op, Opcode::ORNOT);
}

TEST(Assembler, LiSmallIsOneInstruction)
{
    auto p = assemble("li r1, 1000\nli r2, -5");
    EXPECT_EQ(p.code.size(), 2u);
    EXPECT_EQ(first(p, 0).op, Opcode::LDA);
    EXPECT_EQ(first(p, 0).disp, 1000);
    EXPECT_EQ(first(p, 1).disp, -5);
}

TEST(Assembler, LiLargeIsLdahPlusLda)
{
    auto p = assemble("li r1, 1103515245");
    ASSERT_EQ(p.code.size(), 2u);
    EXPECT_EQ(first(p, 0).op, Opcode::LDAH);
    EXPECT_EQ(first(p, 1).op, Opcode::LDA);
    // Value reconstructs: (hi<<16) + lo.
    int64_t v = (int64_t(first(p, 0).disp) << 16) + first(p, 1).disp;
    EXPECT_EQ(v, 1103515245);
}

TEST(Assembler, LaResolvesDataSymbol)
{
    auto p = assemble("la r1, x\n.data\nx: .word 7");
    ASSERT_EQ(p.code.size(), 2u);
    int64_t v = (int64_t(first(p, 0).disp) << 16) + first(p, 1).disp;
    EXPECT_EQ(uint64_t(v), p.symbol("x"));
}

TEST(Assembler, LabelSizeAccountingForPseudos)
{
    // "la" is always two instructions; a label after it must land
    // two words later.
    auto p = assemble("la r1, d\nafter: halt\n.data\nd: .byte 1");
    EXPECT_EQ(p.symbol("after"), p.codeBase + 8);
}

// --- Directives. ---

TEST(Assembler, WordLongByteSizes)
{
    auto p = assemble(".data\na: .word 1, 2\nb: .long 3\nc: .byte 4, 5");
    EXPECT_EQ(p.data.size(), 16u + 4u + 2u);
    EXPECT_EQ(p.symbol("b"), p.symbol("a") + 16);
    EXPECT_EQ(p.symbol("c"), p.symbol("b") + 4);
}

TEST(Assembler, WordLittleEndianEncoding)
{
    auto p = assemble(".data\nv: .word 0x0102030405060708");
    ASSERT_EQ(p.data.size(), 8u);
    EXPECT_EQ(p.data[0], 0x08);
    EXPECT_EQ(p.data[7], 0x01);
}

TEST(Assembler, WordAcceptsLabels)
{
    auto p = assemble("f: halt\n.data\nt: .word f");
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p.data[i];
    EXPECT_EQ(v, p.symbol("f"));
}

TEST(Assembler, SpaceReservesZeros)
{
    auto p = assemble(".data\n.space 12");
    EXPECT_EQ(p.data.size(), 12u);
}

TEST(Assembler, AlignInData)
{
    auto p = assemble(".data\n.byte 1\n.align 8\nx: .word 2");
    EXPECT_EQ(p.symbol("x") % 8, 0u);
    EXPECT_EQ(p.data.size(), 16u);
}

TEST(Assembler, AlignInTextPadsWithNops)
{
    auto p = assemble("nop\n.align 16\nx: halt");
    EXPECT_EQ(p.symbol("x") % 16, 0u);
    // Padding instructions are 2-source-format nops (Figure 3).
    for (size_t i = 1; i + 1 < p.code.size(); ++i)
        EXPECT_TRUE(first(p, i).isNop());
}

TEST(Assembler, AlignMustBePowerOfTwo)
{
    EXPECT_THROW(assemble(".data\n.align 3"), AsmError);
}

// --- Symbols and expressions. ---

TEST(Assembler, SymbolArithmetic)
{
    auto p = assemble("la r1, x+8\n.data\nx: .space 16");
    int64_t v = (int64_t(first(p, 0).disp) << 16) + first(p, 1).disp;
    EXPECT_EQ(uint64_t(v), p.symbol("x") + 8);
}

TEST(Assembler, CharLiterals)
{
    auto p = assemble("li r1, 'A'");
    EXPECT_EQ(first(p, 0).disp, 65);
}

TEST(Assembler, HexLiterals)
{
    auto p = assemble("li r1, 0x7f");
    EXPECT_EQ(first(p, 0).disp, 0x7f);
}

TEST(Assembler, CommentStyles)
{
    auto p = assemble("nop ; semicolon\nnop // slashes\n; full line");
    EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, RegisterAliases)
{
    auto p = assemble("mov sp, r1\nmov lr, r2\nmov zero, r3");
    EXPECT_EQ(first(p, 0).ra, 30);
    EXPECT_EQ(first(p, 1).ra, 26);
    EXPECT_EQ(first(p, 2).ra, 31);
}

TEST(Assembler, EntryDefaultsToCodeBaseOrStartLabel)
{
    EXPECT_EQ(assemble("nop").entry, assemble("nop").codeBase);
    auto p = assemble("nop\nstart: halt");
    EXPECT_EQ(p.entry, p.codeBase + 4);
}

TEST(Assembler, CustomBases)
{
    assembler::AsmOptions opt;
    opt.code_base = 0x4000;
    opt.data_base = 0x200000;
    auto p = assemble("x: nop\n.data\ny: .byte 1", opt);
    EXPECT_EQ(p.symbol("x"), 0x4000u);
    EXPECT_EQ(p.symbol("y"), 0x200000u);
}

// --- Errors. ---

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("x: nop\nx: nop"), AsmError);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate r1, r2, r3"), AsmError);
}

TEST(AssemblerErrors, UndefinedSymbol)
{
    EXPECT_THROW(assemble("br nowhere"), AsmError);
}

TEST(AssemblerErrors, InstructionInDataSection)
{
    EXPECT_THROW(assemble(".data\nadd r1, r2, r3"), AsmError);
}

TEST(AssemblerErrors, WrongRegisterFile)
{
    EXPECT_THROW(assemble("add f1, f2, f3"), AsmError);
    EXPECT_THROW(assemble("addf r1, r2, r3"), AsmError);
}

TEST(AssemblerErrors, ErrorCarriesLineNumber)
{
    try {
        assemble("nop\nnop\nbogus r1");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line, 3u);
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(AssemblerErrors, UnknownDirective)
{
    EXPECT_THROW(assemble(".bogus 1"), AsmError);
}

TEST(AssemblerErrors, LabelOnSectionDirective)
{
    EXPECT_THROW(assemble("x: .data"), AsmError);
}

TEST(AssemblerErrors, BranchOutOfRange)
{
    std::string s = "beq r1, 2000000";
    EXPECT_THROW(assemble(s), AsmError);
}


TEST(Assembler, LiBoundaryValues)
{
    // 16-bit edge: one instruction at the limits, two just outside.
    EXPECT_EQ(assemble("li r1, 32767").code.size(), 1u);
    EXPECT_EQ(assemble("li r1, -32768").code.size(), 1u);
    EXPECT_EQ(assemble("li r1, 32768").code.size(), 2u);
    EXPECT_EQ(assemble("li r1, -32769").code.size(), 2u);
}

TEST(Assembler, LiNegative32BitRoundTrips)
{
    auto p = assemble("li r1, -1000000");
    int64_t v = (int64_t(first(p, 0).disp) << 16) + first(p, 1).disp;
    EXPECT_EQ(v, -1000000);
}

TEST(Assembler, LiRejectsSymbols)
{
    EXPECT_THROW(assemble("li r1, x\nx: halt"), AsmError);
}

TEST(Assembler, FpMemoryOperands)
{
    auto p = assemble("ldf f3, 8(r2)\nstf f4, -8(sp)");
    EXPECT_EQ(first(p, 0).op, Opcode::LDF);
    EXPECT_EQ(first(p, 0).ra, 3);
    EXPECT_EQ(first(p, 1).op, Opcode::STF);
    EXPECT_EQ(first(p, 1).rb, 30);
}

TEST(Assembler, SingleSourceFpForms)
{
    auto p = assemble("sqrtf f1, f2\nitof r3, f4\nftoi f5, r6");
    EXPECT_EQ(first(p, 0).op, Opcode::SQRTF);
    EXPECT_EQ(first(p, 0).ra, 1);
    EXPECT_EQ(first(p, 0).rc, 2);
    EXPECT_EQ(first(p, 1).op, Opcode::ITOF);
    EXPECT_EQ(first(p, 2).op, Opcode::FTOI);
    EXPECT_EQ(first(p, 2).rc, 6);
}

TEST(Assembler, LabelOnOwnLine)
{
    auto p = assemble("top:\n  nop\n  br top");
    EXPECT_EQ(p.symbol("top"), p.codeBase);
    // br sits at word 1: disp = (0x1000 - 0x1008) / 4.
    EXPECT_EQ(first(p, 1).disp, -2);
}

TEST(Assembler, SymbolMinusOffset)
{
    auto p = assemble("la r1, e-8\n.data\n.space 16\ne: .byte 0");
    int64_t v = (int64_t(first(p, 0).disp) << 16) + first(p, 1).disp;
    EXPECT_EQ(uint64_t(v), p.symbol("e") - 8);
}

TEST(Assembler, CodeEndAndDataEnd)
{
    auto p = assemble("nop\nnop\n.data\n.space 5");
    EXPECT_EQ(p.codeEnd(), p.codeBase + 8);
    EXPECT_EQ(p.dataEnd(), p.dataBase + 5);
}

TEST(AssemblerErrors, MissingOperandCount)
{
    EXPECT_THROW(assemble("add r1, r2"), AsmError);
    EXPECT_THROW(assemble("ldq r1"), AsmError);
    EXPECT_THROW(assemble("beq r1"), AsmError);
}

TEST(AssemblerErrors, MemOperandWithoutParens)
{
    EXPECT_THROW(assemble("ldq r1, r2"), AsmError);
}

TEST(AssemblerErrors, MalformedMemOperand)
{
    EXPECT_THROW(assemble("ldq r1, 8(r2"), AsmError);
    EXPECT_THROW(assemble("ldq r1, 8(x9)"), AsmError);
}

TEST(AssemblerErrors, BadNumber)
{
    EXPECT_THROW(assemble("li r1, 12abc"), AsmError);
}

} // namespace
