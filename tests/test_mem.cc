/** @file Unit tests for the cache model and memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace
{

using namespace hpa::mem;

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 16B lines = 128 B.
    return CacheConfig{"t", 128, 2, 16, 2};
}

TEST(Cache, FirstAccessMisses)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_EQ(c.misses.value(), 1u);
}

TEST(Cache, SecondAccessHits)
{
    Cache c(smallCache());
    c.access(0x100, false);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x10F, false).hit);   // same line
    EXPECT_EQ(c.hits.value(), 2u);
}

TEST(Cache, DifferentLinesMiss)
{
    Cache c(smallCache());
    c.access(0x100, false);
    EXPECT_FALSE(c.access(0x110, false).hit);
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    Cache c(smallCache());
    // Same set (set bits = addr[5:4]): addresses 0x100, 0x180 with
    // 4 sets x 16B lines map to the same set.
    c.access(0x100, false);
    c.access(0x180, false);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x180, false).hit);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    c.access(0x100, false);
    c.access(0x180, false);
    c.access(0x100, false);        // 0x180 is now LRU
    c.access(0x200, false);        // evicts 0x180
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_FALSE(c.access(0x180, false).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(smallCache());
    c.access(0x100, true);
    c.access(0x180, false);
    auto r = c.access(0x200, false);   // evicts dirty 0x100
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victim_line_addr, 0x100u);
    EXPECT_EQ(c.writebacks.value(), 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c(smallCache());
    c.access(0x100, false);
    c.access(0x180, false);
    EXPECT_FALSE(c.access(0x200, false).writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(smallCache());
    c.access(0x100, false);
    c.access(0x100, true);         // dirty via write hit
    c.access(0x180, false);
    EXPECT_TRUE(c.access(0x200, false).writeback);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(smallCache());
    c.access(0x100, false);
    c.access(0x180, false);
    // Probing 0x180 must not refresh its LRU position... probe is
    // read-only; 0x180 is MRU, 0x100 LRU.
    EXPECT_TRUE(c.probe(0x100));
    EXPECT_FALSE(c.probe(0x200));
    uint64_t hits = c.hits.value();
    c.probe(0x100);
    EXPECT_EQ(c.hits.value(), hits);
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(smallCache());
    c.access(0x100, true);
    c.flush();
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_FALSE(c.access(0x100, false).hit);
}

TEST(Cache, LineAddr)
{
    Cache c(smallCache());
    EXPECT_EQ(c.lineAddr(0x10F), 0x100u);
    EXPECT_EQ(c.lineAddr(0x110), 0x110u);
}

TEST(Cache, GeometryValidation)
{
    EXPECT_THROW(Cache(CacheConfig{"x", 100, 2, 16, 1}),
                 std::invalid_argument);
    EXPECT_THROW(Cache(CacheConfig{"x", 128, 0, 16, 1}),
                 std::invalid_argument);
    EXPECT_THROW(Cache(CacheConfig{"x", 128, 2, 15, 1}),
                 std::invalid_argument);
}

TEST(Cache, Table1Geometries)
{
    // The Table 1 caches must construct.
    HierarchyConfig cfg;
    EXPECT_NO_THROW(Cache c(cfg.il1));
    EXPECT_NO_THROW(Cache c(cfg.dl1));
    EXPECT_NO_THROW(Cache c(cfg.l2));
    Cache dl1(cfg.dl1);
    EXPECT_EQ(dl1.numSets(), 64u * 1024 / (16 * 4));
}

// --- Hierarchy. ---

TEST(Hierarchy, DataHitLatency)
{
    Hierarchy h;
    h.dataAccess(0x1000, false);               // cold miss
    EXPECT_EQ(h.dataAccess(0x1000, false), 2u);
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    Hierarchy h;
    // DL1 miss + L2 miss + memory: 2 + 8 + 50.
    EXPECT_EQ(h.dataAccess(0x1000, false), 60u);
}

TEST(Hierarchy, L2HitLatency)
{
    Hierarchy h;
    h.dataAccess(0x1000, false);
    // Evict from DL1 by filling its set (4-way, 16B lines, 1024
    // sets: same set every 16 KiB).
    for (int i = 1; i <= 4; ++i)
        h.dataAccess(0x1000 + i * 16384, false);
    // 0x1000 left DL1 but is still in the (larger-line) L2.
    EXPECT_EQ(h.dataAccess(0x1000, false), 2u + 8u);
}

TEST(Hierarchy, FetchHitLatency)
{
    Hierarchy h;
    h.fetchAccess(0x1000);
    EXPECT_EQ(h.fetchAccess(0x1000), 2u);
    EXPECT_EQ(h.fetchAccess(0x1004), 2u);      // same 32B line
}

TEST(Hierarchy, SplitL1sAreIndependent)
{
    Hierarchy h;
    h.fetchAccess(0x1000);
    // Data access to the same address still misses DL1.
    EXPECT_GT(h.dataAccess(0x1000, false), 2u);
}

TEST(Hierarchy, UnifiedL2SharedBetweenL1s)
{
    Hierarchy h;
    h.fetchAccess(0x1000);                     // fills L2 too
    EXPECT_EQ(h.dataAccess(0x1000, false), 10u);  // DL1 miss, L2 hit
}

TEST(Hierarchy, AssumedLoadLatencyIsDl1Hit)
{
    Hierarchy h;
    EXPECT_EQ(h.assumedLoadLatency(), 2u);
}

TEST(Hierarchy, StatsRegistered)
{
    Hierarchy h;
    hpa::stats::Registry reg;
    h.regStats(reg);
    h.dataAccess(0x1000, false);
    EXPECT_NE(reg.findCounter("dl1.misses"), nullptr);
    EXPECT_EQ(reg.findCounter("dl1.misses")->value(), 1u);
}

} // namespace
