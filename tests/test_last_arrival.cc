/** @file Unit tests for the last-arriving operand predictor. */

#include <gtest/gtest.h>

#include "core/last_arrival.hh"

namespace
{

using namespace hpa::core;

TEST(LastArrival, PowerOfTwoEnforced)
{
    EXPECT_THROW(LastArrivalPredictor(0), std::invalid_argument);
    EXPECT_THROW(LastArrivalPredictor(100), std::invalid_argument);
    EXPECT_NO_THROW(LastArrivalPredictor(128));
}

TEST(LastArrival, ColdPredictsLeftLast)
{
    LastArrivalPredictor p(128);
    EXPECT_FALSE(p.predictRightLast(0x1000));
}

TEST(LastArrival, LearnsRightLast)
{
    LastArrivalPredictor p(128);
    p.update(0x1000, true);
    EXPECT_TRUE(p.predictRightLast(0x1000));
}

TEST(LastArrival, HysteresisBeforeFlip)
{
    LastArrivalPredictor p(128);
    p.update(0x1000, true);
    p.update(0x1000, true);            // saturate at 3
    p.update(0x1000, false);           // 2: still right
    EXPECT_TRUE(p.predictRightLast(0x1000));
    p.update(0x1000, false);
    EXPECT_FALSE(p.predictRightLast(0x1000));
}

TEST(LastArrival, Aliasing)
{
    LastArrivalPredictor p(128);
    // PCs 128 entries apart share a counter (pc>>2 index).
    p.update(0x1000, true);
    EXPECT_TRUE(p.predictRightLast(0x1000 + 128 * 4));
}

TEST(LastArrival, DistinctEntriesIndependent)
{
    LastArrivalPredictor p(128);
    p.update(0x1000, true);
    EXPECT_FALSE(p.predictRightLast(0x1004));
}

TEST(Monitor, SizesMatchFigure7Sweep)
{
    EXPECT_EQ(LastArrivalMonitor::SIZES[0], 128u);
    EXPECT_EQ(LastArrivalMonitor::SIZES[LastArrivalMonitor::NUM_SIZES - 1],
              4096u);
}

TEST(Monitor, CountsCorrectPredictions)
{
    LastArrivalMonitor m;
    // Train every shadow toward right-last at one PC.
    for (int i = 0; i < 4; ++i) {
        uint8_t bits = m.snapshot(0x1000);
        m.resolve(0x1000, bits, false, true);
    }
    // After warmup the snapshot predicts right for every size.
    uint8_t bits = m.snapshot(0x1000);
    m.resolve(0x1000, bits, false, true);
    EXPECT_EQ(m.samples(), 5u);
    for (unsigned s = 0; s < LastArrivalMonitor::NUM_SIZES; ++s)
        EXPECT_GE(m.correct(s), 3u);
}

TEST(Monitor, SimultaneousExcludedFromAccuracy)
{
    LastArrivalMonitor m;
    m.resolve(0x1000, 0, true, false);
    m.resolve(0x1000, 0, false, false);   // left-last, predicted left
    EXPECT_EQ(m.samples(), 2u);
    EXPECT_EQ(m.simultaneous(), 1u);
    EXPECT_DOUBLE_EQ(m.accuracy(0), 1.0);
}

TEST(Monitor, AccuracyWithNoSamplesIsZero)
{
    LastArrivalMonitor m;
    EXPECT_DOUBLE_EQ(m.accuracy(0), 0.0);
}

} // namespace
