/** @file Unit and property tests for HPA-ISA: opcode properties,
 *  encode/decode round-trips, and the operand classification that
 *  Figures 2-3 are built on. */

#include <gtest/gtest.h>

#include "isa/decode.hh"
#include "isa/static_inst.hh"

namespace
{

using namespace hpa::isa;

TEST(OpInfo, EveryOpcodeHasMnemonicAndFormat)
{
    for (unsigned i = 0; i < unsigned(Opcode::NumOpcodes); ++i) {
        const OpInfo &inf = opInfo(Opcode(i));
        EXPECT_FALSE(inf.mnemonic.empty()) << i;
        EXPECT_LE(inf.numSrcFields, 2u) << inf.mnemonic;
    }
}

TEST(OpInfo, LatenciesMatchTable1)
{
    EXPECT_EQ(opClassLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(opClassLatency(OpClass::FpAlu), 2u);
    EXPECT_EQ(opClassLatency(OpClass::IntMult), 3u);
    EXPECT_EQ(opClassLatency(OpClass::IntDiv), 20u);
    EXPECT_EQ(opClassLatency(OpClass::FpMult), 4u);
    EXPECT_EQ(opClassLatency(OpClass::FpDiv), 12u);
}

TEST(OpInfo, OnlyDividesAreUnpipelined)
{
    EXPECT_TRUE(opClassUnpipelined(OpClass::IntDiv));
    EXPECT_TRUE(opClassUnpipelined(OpClass::FpDiv));
    EXPECT_FALSE(opClassUnpipelined(OpClass::IntMult));
    EXPECT_FALSE(opClassUnpipelined(OpClass::IntAlu));
    EXPECT_FALSE(opClassUnpipelined(OpClass::MemRead));
}

TEST(Registers, ZeroRegisterIdentification)
{
    EXPECT_TRUE(isZeroReg(unifiedInt(31)));
    EXPECT_TRUE(isZeroReg(unifiedFp(31)));
    EXPECT_FALSE(isZeroReg(unifiedInt(0)));
    EXPECT_FALSE(isZeroReg(unifiedFp(30)));
}

TEST(Registers, UnifiedNamespaceSplit)
{
    EXPECT_FALSE(isFpReg(unifiedInt(31)));
    EXPECT_TRUE(isFpReg(unifiedFp(0)));
    EXPECT_EQ(regName(unifiedInt(5)), "r5");
    EXPECT_EQ(regName(unifiedFp(12)), "f12");
}

// --- Encode/decode round-trips. ---

void
expectRoundTrip(const StaticInst &si)
{
    auto decoded = decode(encode(si));
    ASSERT_TRUE(decoded.has_value()) << si.disassemble();
    EXPECT_EQ(decoded->op, si.op);
    EXPECT_EQ(decoded->ra, si.ra) << si.disassemble();
    if (si.format() == Format::Operate) {
        EXPECT_EQ(decoded->useLiteral, si.useLiteral);
        if (si.useLiteral) {
            EXPECT_EQ(decoded->literal, si.literal);
        } else {
            EXPECT_EQ(decoded->rb, si.rb);
        }
        EXPECT_EQ(decoded->rc, si.rc);
    }
    if (si.format() == Format::Memory
        || si.format() == Format::Branch) {
        EXPECT_EQ(decoded->disp, si.disp) << si.disassemble();
    }
    if (si.format() == Format::Jump) {
        EXPECT_EQ(decoded->rb, si.rb);
    }
}

TEST(Encoding, OperateRoundTrip)
{
    expectRoundTrip(makeOp(Opcode::ADD, 1, 2, 3));
    expectRoundTrip(makeOp(Opcode::S8ADD, 31, 31, 31));
    expectRoundTrip(makeOpImm(Opcode::XOR, 7, 255, 9));
    expectRoundTrip(makeOpImm(Opcode::SLL, 0, 0, 30));
}

TEST(Encoding, FpOperateRoundTrip)
{
    expectRoundTrip(makeOp(Opcode::ADDF, 1, 2, 3));
    expectRoundTrip(makeOp(Opcode::DIVF, 30, 29, 28));
    expectRoundTrip(makeOp(Opcode::ITOF, 4, 31, 5));
    expectRoundTrip(makeOp(Opcode::FTOI, 6, 31, 7));
}

TEST(Encoding, MemoryRoundTripWithNegativeDisp)
{
    expectRoundTrip(makeMem(Opcode::LDQ, 1, 2, -32768));
    expectRoundTrip(makeMem(Opcode::STB, 3, 4, 32767));
    expectRoundTrip(makeMem(Opcode::LDA, 5, 31, -1));
    expectRoundTrip(makeMem(Opcode::LDAH, 6, 31, 16));
}

TEST(Encoding, BranchRoundTripWithNegativeDisp)
{
    expectRoundTrip(makeBranch(Opcode::BEQ, 9, -1048576));
    expectRoundTrip(makeBranch(Opcode::BNE, 9, 1048575));
    expectRoundTrip(makeBranch(Opcode::BR, 31, -4));
    expectRoundTrip(makeBranch(Opcode::BSR, 26, 100));
}

TEST(Encoding, JumpAndSystemRoundTrip)
{
    expectRoundTrip(makeJump(Opcode::JMP, 31, 4));
    expectRoundTrip(makeJump(Opcode::JSR, 26, 9));
    expectRoundTrip(makeJump(Opcode::RET, 31, 26));
    expectRoundTrip(makeSystem(Opcode::HALT));
    expectRoundTrip(makeSystem(Opcode::OUT, 3));
}

TEST(Encoding, IllegalWordsRejected)
{
    // Unknown primary opcode.
    bool unknown_primary = decode(0x07u << 26).has_value();
    EXPECT_FALSE(unknown_primary);
    // Bad integer-operate function code.
    bool bad_int_func =
        decode((0x10u << 26) | (0x7Fu << 5)).has_value();
    EXPECT_FALSE(bad_int_func);
    // Bad floating-operate function code.
    bool bad_flt_func =
        decode((0x17u << 26) | (0x7Fu << 5)).has_value();
    EXPECT_FALSE(bad_flt_func);
    // Bad system function.
    bool bad_sys = decode((0x00u << 26) | 0x3F).has_value();
    EXPECT_FALSE(bad_sys);
    // Bad jump function (3).
    bool bad_jump = decode((0x1Au << 26) | (3u << 14)).has_value();
    EXPECT_FALSE(bad_jump);
}

/** Property sweep: every opcode round-trips with varied fields. */
class OpcodeRoundTrip : public ::testing::TestWithParam<unsigned>
{};

TEST_P(OpcodeRoundTrip, AllFieldPatterns)
{
    auto op = Opcode(GetParam());
    const OpInfo &inf = opInfo(op);
    for (unsigned pattern = 0; pattern < 8; ++pattern) {
        StaticInst si;
        si.op = op;
        si.ra = RegIndex((pattern * 7 + 3) & 31);
        si.rb = RegIndex((pattern * 5 + 1) & 31);
        si.rc = RegIndex((pattern * 11 + 6) & 31);
        if (inf.format == Format::Memory)
            si.disp = int32_t(pattern) * 1000 - 4000;
        if (inf.format == Format::Branch)
            si.disp = int32_t(pattern) * 100000 - 400000;
        expectRoundTrip(si);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range(0u, unsigned(Opcode::NumOpcodes)));

// --- Operand classification (Figures 2-3). ---

TEST(Classification, TwoSourceFormatExcludesStoresAndLiterals)
{
    EXPECT_TRUE(makeOp(Opcode::ADD, 1, 2, 3).isTwoSourceFormat());
    EXPECT_FALSE(makeOpImm(Opcode::ADD, 1, 8, 3).isTwoSourceFormat());
    EXPECT_FALSE(makeMem(Opcode::STQ, 1, 2, 0).isTwoSourceFormat());
    EXPECT_FALSE(makeMem(Opcode::LDQ, 1, 2, 0).isTwoSourceFormat());
    EXPECT_FALSE(makeBranch(Opcode::BEQ, 1, 0).isTwoSourceFormat());
}

TEST(Classification, NumSrcFieldsWithLiteral)
{
    EXPECT_EQ(makeOp(Opcode::ADD, 1, 2, 3).numSrcFields(), 2u);
    EXPECT_EQ(makeOpImm(Opcode::ADD, 1, 2, 3).numSrcFields(), 1u);
    EXPECT_EQ(makeMem(Opcode::LDQ, 1, 2, 0).numSrcFields(), 1u);
    EXPECT_EQ(makeMem(Opcode::STQ, 1, 2, 0).numSrcFields(), 2u);
}

TEST(Classification, UniqueSourcesDropZeroRegs)
{
    // add r1 <- r2, r31: one unique source.
    auto si = makeOp(Opcode::ADD, 2, 31, 1);
    EXPECT_EQ(si.uniqueSrcRegs().count, 1u);
    EXPECT_EQ(si.uniqueSrcRegs().regs[0], unifiedInt(2));
}

TEST(Classification, UniqueSourcesCollapseDuplicates)
{
    // add r1 <- r2, r2: one unique source.
    auto si = makeOp(Opcode::ADD, 2, 2, 1);
    EXPECT_EQ(si.uniqueSrcRegs().count, 1u);
}

TEST(Classification, TwoUniqueSources)
{
    auto si = makeOp(Opcode::ADD, 2, 3, 1);
    EXPECT_EQ(si.uniqueSrcRegs().count, 2u);
}

TEST(Classification, ZeroUniqueSources)
{
    auto si = makeOp(Opcode::ADD, 31, 31, 1);
    EXPECT_EQ(si.uniqueSrcRegs().count, 0u);
}

TEST(Classification, NopDetection)
{
    EXPECT_TRUE(makeNop().isNop());
    EXPECT_TRUE(makeOp(Opcode::ADD, 1, 2, 31).isNop());
    EXPECT_FALSE(makeOp(Opcode::ADD, 1, 2, 3).isNop());
    EXPECT_FALSE(makeMem(Opcode::LDQ, 31, 2, 0).isNop());
}

TEST(Classification, NopIsStillTwoSourceFormat)
{
    // bis r31,r31,r31 occupies a 2-source format slot (Figure 3's
    // nop category).
    EXPECT_TRUE(makeNop().isTwoSourceFormat());
    EXPECT_EQ(makeNop().uniqueSrcRegs().count, 0u);
}

TEST(Classification, StoreSourcesAreDataThenBase)
{
    auto si = makeMem(Opcode::STQ, 5, 6, 8);
    SrcList s = si.srcRegs();
    ASSERT_EQ(s.count, 2u);
    EXPECT_EQ(s.regs[0], unifiedInt(5));
    EXPECT_EQ(s.regs[1], unifiedInt(6));
}

TEST(Classification, FpStoreDataIsFpRegister)
{
    auto si = makeMem(Opcode::STF, 5, 6, 8);
    SrcList s = si.srcRegs();
    ASSERT_EQ(s.count, 2u);
    EXPECT_EQ(s.regs[0], unifiedFp(5));
    EXPECT_EQ(s.regs[1], unifiedInt(6));
}

TEST(Classification, LoadReadsOnlyBase)
{
    auto si = makeMem(Opcode::LDQ, 5, 6, 8);
    SrcList s = si.srcRegs();
    ASSERT_EQ(s.count, 1u);
    EXPECT_EQ(s.regs[0], unifiedInt(6));
}

TEST(Classification, DestRegisterPerFormat)
{
    EXPECT_EQ(makeOp(Opcode::ADD, 1, 2, 3).destReg(), unifiedInt(3));
    EXPECT_EQ(makeOp(Opcode::ADDF, 1, 2, 3).destReg(), unifiedFp(3));
    EXPECT_EQ(makeMem(Opcode::LDQ, 4, 5, 0).destReg(), unifiedInt(4));
    EXPECT_EQ(makeMem(Opcode::LDF, 4, 5, 0).destReg(), unifiedFp(4));
    EXPECT_EQ(makeMem(Opcode::STQ, 4, 5, 0).destReg(), NO_REG);
    EXPECT_EQ(makeBranch(Opcode::BEQ, 4, 0).destReg(), NO_REG);
    EXPECT_EQ(makeBranch(Opcode::BSR, 26, 0).destReg(),
              unifiedInt(26));
    EXPECT_EQ(makeJump(Opcode::RET, 31, 26).destReg(),
              unifiedInt(31));
}

TEST(Classification, CrossFileConversions)
{
    auto itof = makeOp(Opcode::ITOF, 4, 31, 5);
    ASSERT_EQ(itof.srcRegs().count, 1u);
    EXPECT_EQ(itof.srcRegs().regs[0], unifiedInt(4));
    EXPECT_EQ(itof.destReg(), unifiedFp(5));

    auto ftoi = makeOp(Opcode::FTOI, 4, 31, 5);
    ASSERT_EQ(ftoi.srcRegs().count, 1u);
    EXPECT_EQ(ftoi.srcRegs().regs[0], unifiedFp(4));
    EXPECT_EQ(ftoi.destReg(), unifiedInt(5));
}

TEST(Classification, MemSizes)
{
    EXPECT_EQ(makeMem(Opcode::LDBU, 1, 2, 0).memSize(), 1u);
    EXPECT_EQ(makeMem(Opcode::LDW, 1, 2, 0).memSize(), 2u);
    EXPECT_EQ(makeMem(Opcode::LDL, 1, 2, 0).memSize(), 4u);
    EXPECT_EQ(makeMem(Opcode::LDQ, 1, 2, 0).memSize(), 8u);
    EXPECT_EQ(makeMem(Opcode::STF, 1, 2, 0).memSize(), 8u);
    EXPECT_EQ(makeOp(Opcode::ADD, 1, 2, 3).memSize(), 0u);
}

TEST(Classification, ControlPredicates)
{
    EXPECT_TRUE(makeBranch(Opcode::BEQ, 1, 0).isCondBranch());
    EXPECT_FALSE(makeBranch(Opcode::BR, 31, 0).isCondBranch());
    EXPECT_TRUE(makeBranch(Opcode::BR, 31, 0).isUncondControl());
    EXPECT_TRUE(makeBranch(Opcode::BSR, 26, 0).isCall());
    EXPECT_TRUE(makeJump(Opcode::JSR, 26, 1).isCall());
    EXPECT_TRUE(makeJump(Opcode::RET, 31, 26).isReturn());
    EXPECT_TRUE(makeJump(Opcode::JMP, 31, 1).isIndirect());
    EXPECT_FALSE(makeBranch(Opcode::BEQ, 1, 0).isIndirect());
}

TEST(Disasm, RepresentativeInstructions)
{
    EXPECT_EQ(makeOp(Opcode::ADD, 1, 2, 3).disassemble(),
              "add r1, r2, r3");
    EXPECT_EQ(makeOpImm(Opcode::SLL, 4, 8, 5).disassemble(),
              "sll r4, #8, r5");
    EXPECT_EQ(makeMem(Opcode::LDQ, 1, 2, -8).disassemble(),
              "ldq r1, -8(r2)");
    EXPECT_EQ(makeOp(Opcode::MULF, 1, 2, 3).disassemble(),
              "mulf f1, f2, f3");
    EXPECT_EQ(makeSystem(Opcode::HALT).disassemble(), "halt");
}

} // namespace
