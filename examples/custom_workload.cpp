/**
 * @file
 * Bringing your own workload: write an HPA-ISA kernel, validate it
 * functionally against a C++ golden model, inspect its
 * characterization (the paper's Figures 2-4 statistics), and measure
 * it under the half-price schemes.
 */

#include <iostream>

#include "func/emulator.hh"
#include "sim/experiment.hh"

namespace
{

/** String reversal + checksum: the kernel we "bring". */
const char *KERNEL = R"(
        li    r1, 64              ; string length
        la    r2, str
        ; fill str with 'a' + (i & 15)
        clr   r3
fill:   and   r3, #15, r4
        add   r4, #97, r4
        add   r2, r3, r5
        stb   r4, 0(r5)
        add   r3, #1, r3
        cmplt r3, r1, r4
        bne   r4, fill
        ; reverse in place
        clr   r3
        sub   r1, #1, r6
rev:    cmplt r3, r6, r4
        beq   r4, done
        add   r2, r3, r5
        ldbu  r7, 0(r5)
        add   r2, r6, r8
        ldbu  r9, 0(r8)
        stb   r9, 0(r5)
        stb   r7, 0(r8)
        add   r3, #1, r3
        sub   r6, #1, r6
        br    rev
done:   ; emit first four bytes
        ldbu  r4, 0(r2)
        out   r4
        ldbu  r4, 1(r2)
        out   r4
        ldbu  r4, 2(r2)
        out   r4
        ldbu  r4, 3(r2)
        out   r4
        halt
        .data
str:    .space 64
)";

/** Golden model mirroring the kernel. */
std::string
golden()
{
    char s[64];
    for (int i = 0; i < 64; ++i)
        s[i] = char('a' + (i & 15));
    for (int i = 0, j = 63; i < j; ++i, --j)
        std::swap(s[i], s[j]);
    return std::string(s, s + 4);
}

} // namespace

int
main()
{
    using namespace hpa;

    auto image = assembler::assemble(KERNEL);

    // 1. Functional validation against the golden model.
    func::Emulator emu(image);
    emu.run(1000000);
    std::string expect = golden();
    std::cout << "functional check: console=\"" << emu.console()
              << "\" expected=\"" << expect << "\" -> "
              << (emu.console() == expect ? "OK" : "MISMATCH")
              << "\n\n";

    // 2. Operand characterization (Figures 2-3 statistics), straight
    //    from the committed stream.
    func::Emulator profile(image);
    uint64_t two_fmt = 0, two_unique = 0, stores = 0, total = 0;
    while (!profile.halted()) {
        auto rec = profile.step();
        ++total;
        if (rec.inst.isStore())
            ++stores;
        else if (rec.inst.isTwoSourceFormat()) {
            ++two_fmt;
            if (rec.inst.uniqueSrcRegs().count == 2)
                ++two_unique;
        }
    }
    std::cout << "characterization of " << total << " instructions:\n"
              << "  2-source format: " << two_fmt << " ("
              << 100.0 * double(two_fmt) / double(total) << "%)\n"
              << "  true 2-source:   " << two_unique << "\n"
              << "  stores:          " << stores << "\n\n";

    // 3. Timing under base vs. combined half-price machine.
    sim::Simulation base(image, sim::Machine::base(4).build().cfg);
    base.run();
    sim::Machine half_m =
        sim::Machine::base(4)
            .wakeup(core::WakeupModel::Sequential)
            .regfile(core::RegfileModel::SequentialAccess);
    sim::Simulation half(image, half_m.cfg);
    half.run();

    std::cout << "base IPC " << base.ipc() << ", half-price IPC "
              << half.ipc() << " ("
              << 100.0 * half.ipc() / base.ipc() << "%)\n";

    // 4. Disassemble the first instructions, for the curious.
    std::cout << "\nfirst instructions:\n";
    for (size_t i = 0; i < 6 && i < image.code.size(); ++i)
        std::cout << "  0x" << std::hex << image.codeBase + 4 * i
                  << std::dec << ": "
                  << isa::decode(image.code[i])->disassemble() << "\n";
    return 0;
}
