/**
 * @file
 * Quickstart: assemble an HPA-ISA program, run it through the
 * execution-driven out-of-order timing simulator, and print the key
 * statistics. Build and run:
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "sim/experiment.hh"

int
main()
{
    using namespace hpa;

    // 1. Write a program in HPA-ISA assembly. This one sums an array
    //    and prints the low byte of the sum via OUT.
    const char *program = R"(
        li    r1, 512             ; element count
        la    r2, data            ; base pointer
        clr   r3                  ; sum
loop:   ldq   r4, 0(r2)
        add   r3, r4, r3
        lda   r2, 8(r2)
        sub   r1, #1, r1
        bne   r1, loop
        out   r3
        halt
        .data
        .align 8
data:   .word 1, 2, 3, 4, 5, 6, 7, 8
        .space 4032
)";

    // 2. Assemble it.
    assembler::Program image = assembler::assemble(program);
    std::cout << "assembled " << image.code.size()
              << " instructions, entry at 0x" << std::hex
              << image.entry << std::dec << "\n";

    // 3. Pick a machine: the paper's 4-wide base configuration
    //    (Table 1), then run execution-driven timing simulation.
    sim::Machine base = sim::Machine::base(4);
    sim::Simulation s(image, base.cfg);
    s.run();

    std::cout << "console bytes: "
              << unsigned(uint8_t(s.emulator().console()[0])) << "\n";
    std::cout << "committed: " << s.core().stats().committed.value()
              << " instructions in " << s.core().cycle()
              << " cycles (IPC " << s.ipc() << ")\n\n";

    // 4. Try a half-price configuration: sequential wakeup +
    //    sequential register access (Section 5.3). The builder
    //    validates the combination and names the machine.
    sim::Machine hp =
        sim::Machine::base(4)
            .wakeup(core::WakeupModel::Sequential)
            .regfile(core::RegfileModel::SequentialAccess);
    std::cout << "machine: " << hp.name << "\n";
    sim::Simulation half(image, hp.cfg);
    half.run();
    std::cout << "half-price IPC: " << half.ipc() << " ("
              << 100.0 * half.ipc() / s.ipc() << "% of base)\n\n";

    // 5. Full statistics report (or statsRegistry().toJson(os) for
    //    the machine-readable "hpa.stats.v1" form).
    half.report(std::cout);
    return 0;
}
