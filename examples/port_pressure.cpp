/**
 * @file
 * Register-file port pressure demo: run an adversarial kernel (every
 * instruction needs two register-file reads) and a friendly kernel
 * (operands always caught on the bypass) across all four
 * register-file organizations, showing when the half-ported designs
 * pay and when they ride for free — plus the access-time and area
 * each design would cost (Section 4's CACTI-style model).
 */

#include <iostream>

#include "model/timing_models.hh"
#include "sim/experiment.hh"

namespace
{

/** Every add reads two registers that have long been in the RF. */
const char *ADVERSARIAL = R"(
        li r8, 3
        li r9, 4
        li r1, 2000
loop:   add r8, r9, r10
        add r8, r9, r11
        add r8, r9, r12
        add r8, r9, r13
        add r8, r9, r14
        add r8, r9, r15
        add r8, r9, r16
        add r8, r9, r17
        sub r1, #1, r1
        bne r1, loop
        halt
)";

/** Serial chain: one operand always arrives via the bypass. */
const char *FRIENDLY = R"(
        li r1, 2000
        clr r2
loop:   add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        add r2, #1, r2
        sub r1, #1, r1
        bne r1, loop
        halt
)";

} // namespace

int
main()
{
    using namespace hpa;

    struct Variant
    {
        const char *name;
        core::RegfileModel model;
        unsigned read_ports;      // total, 4-wide machine
    };
    const Variant variants[] = {
        {"2 ports per slot (base)", core::RegfileModel::TwoPort, 8},
        {"sequential access", core::RegfileModel::SequentialAccess, 4},
        {"1 extra RF stage", core::RegfileModel::ExtraStage, 8},
        {"half ports + crossbar",
         core::RegfileModel::HalfPortCrossbar, 4},
    };

    model::RegfileTimingModel rf;
    // 4-wide machine: 8 or 4 read ports + 4 write ports.
    auto ports_total = [](unsigned reads) { return reads + 4; };

    for (const char *kernel : {ADVERSARIAL, FRIENDLY}) {
        std::cout << (kernel == ADVERSARIAL
                          ? "--- adversarial kernel (every op needs 2 "
                            "RF reads) ---"
                          : "--- friendly kernel (bypass captures an "
                            "operand) ---")
                  << "\n";
        auto image = assembler::assemble(kernel);
        uint64_t base_cycles = 0;
        for (const Variant &v : variants) {
            sim::Machine m =
                sim::Machine::base(4).regfile(v.model);
            sim::Simulation s(image, m.cfg);
            s.run();
            if (v.model == core::RegfileModel::TwoPort)
                base_cycles = s.core().cycle();
            unsigned p = ports_total(v.read_ports);
            std::cout << "  " << v.name << ": " << s.core().cycle()
                      << " cycles ("
                      << 100.0 * double(base_cycles)
                             / double(s.core().cycle())
                      << "% of base speed), "
                      << s.core().stats().seqRegAccesses.value()
                      << " sequential accesses, RF access "
                      << rf.accessNs(160, p) << " ns, area x"
                      << rf.area(160, p) / rf.area(160, 12) << "\n";
        }
        std::cout << "\n";
    }
    return 0;
}
