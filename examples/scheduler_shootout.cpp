/**
 * @file
 * Compare every wakeup-logic organization on one SPEC substitute:
 * conventional, sequential wakeup (with and without a last-arrival
 * predictor), and tag elimination. Prints IPC, scheduling-recovery
 * activity, and the analytical wakeup-delay each design would run at
 * — the frequency-vs-IPC trade the paper argues for.
 *
 * Usage: scheduler_shootout [benchmark] [insts]
 */

#include <cstdlib>
#include <iostream>

#include "model/timing_models.hh"
#include "sim/experiment.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace hpa;

    std::string bench = argc > 1 ? argv[1] : "gzip";
    uint64_t budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 200000;

    auto w = workloads::make(bench, workloads::Scale::Full);
    uint64_t steady = w.program.symbols.count("steady")
        ? w.program.symbol("steady") : 0;
    std::cout << "benchmark: " << w.name << " — " << w.description
              << "\n\n";

    struct Variant
    {
        const char *name;
        core::WakeupModel model;
        unsigned comparators; // per entry, on the fast wakeup bus
    };
    const Variant variants[] = {
        {"conventional", core::WakeupModel::Conventional, 2},
        {"sequential wakeup", core::WakeupModel::Sequential, 1},
        {"seq. wakeup, no pred", core::WakeupModel::SequentialNoPred,
         1},
        {"tag elimination", core::WakeupModel::TagElimination, 1},
    };

    model::WakeupDelayModel delay;
    double base_ipc = 0;

    for (const Variant &v : variants) {
        sim::Machine m = sim::Machine::base(4).wakeup(v.model);
        const core::CoreConfig &cfg = m.cfg;
        sim::Simulation s(w.program, cfg, budget, steady);
        s.run();
        if (v.model == core::WakeupModel::Conventional)
            base_ipc = s.ipc();

        const auto &st = s.core().stats();
        double ps = delay.delayPs(cfg.ruu_size, v.comparators,
                                  cfg.width);
        std::cout << v.name << ":\n"
                  << "  IPC " << s.ipc() << " ("
                  << 100.0 * s.ipc() / base_ipc << "% of base)\n"
                  << "  wakeup delay " << ps << " ps\n"
                  << "  slow-bus delayed issues "
                  << st.seqWakeupDelayed.value()
                  << ", tag-elim mis-issues "
                  << st.tagElimMisissues.value()
                  << ", squashed issues "
                  << st.squashedIssues.value() << "\n\n";
    }

    std::cout << "The half-price argument: sequential wakeup gives up "
              << "a fraction of a percent of IPC\nfor a "
              << 100.0 * delay.speedup(64, 2, 1)
              << "% faster scheduling clock, without any recovery "
              << "hardware.\n";
    return 0;
}
