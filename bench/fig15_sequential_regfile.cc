/**
 * @file
 * Figure 15: IPC of sequential register access (one read port per
 * issue slot), a conventional register file with one extra pipeline
 * stage, and a half-read-ported file with a fully connected crossbar
 * and global port arbitration — normalized to the base machine.
 *
 * Paper shape: sequential register access loses 1.1%/0.7% on
 * average (worst 2.2%, eon, 4-wide); the 4-wide machine suffers
 * slightly more than the 8-wide one; the crossbar variant is close
 * to base.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Figure 15: performance of sequential register access",
           "Kim & Lipasti, ISCA 2003, Figure 15", budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u}) {
        for (const auto &name : names) {
            jobs.push_back(job(name, sim::baseMachine(width), budget));
            jobs.push_back(job(
                name,
                sim::withRegfile(sim::baseMachine(width),
                                 core::RegfileModel::SequentialAccess),
                budget));
            jobs.push_back(job(
                name,
                sim::withRegfile(sim::baseMachine(width),
                                 core::RegfileModel::ExtraStage),
                budget));
            jobs.push_back(job(
                name,
                sim::withRegfile(sim::baseMachine(width),
                                 core::RegfileModel::HalfPortCrossbar),
                budget));
        }
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        row("bench",
            {"base IPC", "seq RF", "1 extra stg", "reg+xbar"},
            10, 12);
        std::vector<double> nsq, nex, nxb;
        for (const auto &name : names) {
            double b = res[k].ipc;
            double sq = res[k + 1].ipc / b;
            double ex = res[k + 2].ipc / b;
            double xb = res[k + 3].ipc / b;
            k += 4;
            nsq.push_back(sq);
            nex.push_back(ex);
            nxb.push_back(xb);
            row(name,
                {fmt(b, 3), fmt(sq, 4), fmt(ex, 4), fmt(xb, 4)});
        }
        row("geomean",
            {"", fmt(geomean(nsq), 4), fmt(geomean(nex), 4),
             fmt(geomean(nxb), 4)});
    }
    std::printf("\nPaper means: seq RF 0.989 (4-wide) / 0.993 "
                "(8-wide); crossbar close to 1.0.\n");
    return 0;
}
