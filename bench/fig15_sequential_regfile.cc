/**
 * @file
 * Figure 15: IPC of sequential register access (one read port per
 * issue slot), a conventional register file with one extra pipeline
 * stage, and a half-read-ported file with a fully connected crossbar
 * and global port arbitration — normalized to the base machine.
 *
 * Paper shape: sequential register access loses 1.1%/0.7% on
 * average (worst 2.2%, eon, 4-wide); the 4-wide machine suffers
 * slightly more than the 8-wide one; the crossbar variant is close
 * to base.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Figure 15: performance of sequential register access",
           "Kim & Lipasti, ISCA 2003, Figure 15");
    uint64_t budget = instBudget();

    WorkloadCache cache;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        row("bench",
            {"base IPC", "seq RF", "1 extra stg", "reg+xbar"},
            10, 12);
        std::vector<double> nsq, nex, nxb;
        for (const auto &name : workloads::benchmarkNames()) {
            const auto &w = cache.get(name);
            auto base = runSim(w, sim::baseMachine(width).cfg, budget);
            auto sq = runSim(
                w,
                sim::withRegfile(sim::baseMachine(width),
                                 core::RegfileModel::SequentialAccess)
                    .cfg,
                budget);
            auto ex = runSim(
                w,
                sim::withRegfile(sim::baseMachine(width),
                                 core::RegfileModel::ExtraStage)
                    .cfg,
                budget);
            auto xb = runSim(
                w,
                sim::withRegfile(sim::baseMachine(width),
                                 core::RegfileModel::HalfPortCrossbar)
                    .cfg,
                budget);
            double b = base->ipc();
            nsq.push_back(sq->ipc() / b);
            nex.push_back(ex->ipc() / b);
            nxb.push_back(xb->ipc() / b);
            row(name,
                {fmt(b, 3), fmt(sq->ipc() / b, 4),
                 fmt(ex->ipc() / b, 4), fmt(xb->ipc() / b, 4)});
        }
        row("geomean",
            {"", fmt(geomean(nsq), 4), fmt(geomean(nex), 4),
             fmt(geomean(nxb), 4)});
    }
    std::printf("\nPaper means: seq RF 0.989 (4-wide) / 0.993 "
                "(8-wide); crossbar close to 1.0.\n");
    return 0;
}
