/**
 * @file
 * Figure 15: IPC of sequential register access (one read port per
 * issue slot), a conventional register file with one extra pipeline
 * stage, and a half-read-ported file with a fully connected crossbar
 * and global port arbitration — normalized to the base machine.
 *
 * Paper shape: sequential register access loses 1.1%/0.7% on
 * average (worst 2.2%, eon, 4-wide); the 4-wide machine suffers
 * slightly more than the 8-wide one; the crossbar variant is close
 * to base.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Figure 15: performance of sequential register access",
           "Kim & Lipasti, ISCA 2003, Figure 15", budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u}) {
        sim::Machine base = sim::Machine::base(width);
        sim::Machine seqrf =
            sim::Machine::base(width).regfile(
                core::RegfileModel::SequentialAccess);
        sim::Machine extra = sim::Machine::base(width).regfile(
            core::RegfileModel::ExtraStage);
        sim::Machine xbar =
            sim::Machine::base(width).regfile(
                core::RegfileModel::HalfPortCrossbar);
        for (const auto &name : names) {
            jobs.push_back(job(name, base, budget));
            jobs.push_back(job(name, seqrf, budget));
            jobs.push_back(job(name, extra, budget));
            jobs.push_back(job(name, xbar, budget));
        }
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        Table t({"bench", "base IPC", "seq RF", "1 extra stg",
                 "reg+xbar"});
        for (const auto &name : names) {
            double b = res[k].ipc;
            t.begin(name)
                .abs(b, 3)
                .norm(res[k + 1].ipc / b)
                .norm(res[k + 2].ipc / b)
                .norm(res[k + 3].ipc / b)
                .end();
            k += 4;
        }
        t.geomeanRow();
    }
    std::printf("\nPaper means: seq RF 0.989 (4-wide) / 0.993 "
                "(8-wide); crossbar close to 1.0.\n");
    return 0;
}
