/**
 * @file
 * Figure 16: IPC of sequential wakeup + sequential register access
 * combined (1k-entry last-arrival predictor), normalized to the
 * base machine. In the combined configuration only the fast-side
 * "now" bit can clear seq_reg_access, so wakeup mispredictions and
 * simultaneous wakeups force the 2-cycle + 1-issue-slot penalty.
 *
 * Paper shape: 2.2% mean degradation, worst case 4.8% (bzip,
 * 8-wide); slightly worse than the sum of the individual techniques.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Figure 16: combined sequential wakeup + sequential "
           "register access",
           "Kim & Lipasti, ISCA 2003, Figure 16", budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u}) {
        sim::Machine base = sim::Machine::base(width);
        sim::Machine seqw = sim::Machine::base(width)
                                .wakeup(core::WakeupModel::Sequential)
                                .lap(1024);
        sim::Machine comb =
            sim::Machine::base(width)
                .wakeup(core::WakeupModel::Sequential)
                .lap(1024)
                .regfile(core::RegfileModel::SequentialAccess);
        sim::Machine seqrf =
            sim::Machine::base(width).regfile(
                core::RegfileModel::SequentialAccess);
        for (const auto &name : names) {
            jobs.push_back(job(name, base, budget));
            jobs.push_back(job(name, comb, budget));
            jobs.push_back(job(name, seqw, budget));
            jobs.push_back(job(name, seqrf, budget));
        }
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        Table t({"bench", "base IPC", "combined", "seq-wkup",
                 "seq-RF"});
        for (const auto &name : names) {
            double b = res[k].ipc;
            t.begin(name)
                .abs(b, 3)
                .norm(res[k + 1].ipc / b)
                .abs(res[k + 2].ipc / b, 4)
                .abs(res[k + 3].ipc / b, 4)
                .end();
            k += 4;
        }
        t.geomeanRow();
    }
    std::printf("\nPaper: 2.2%% mean degradation, worst case 4.8%%; "
                "combined slightly worse than the sum of parts.\n");
    return 0;
}
