/**
 * @file
 * Figure 16: IPC of sequential wakeup + sequential register access
 * combined (1k-entry last-arrival predictor), normalized to the
 * base machine. In the combined configuration only the fast-side
 * "now" bit can clear seq_reg_access, so wakeup mispredictions and
 * simultaneous wakeups force the 2-cycle + 1-issue-slot penalty.
 *
 * Paper shape: 2.2% mean degradation, worst case 4.8% (bzip,
 * 8-wide); slightly worse than the sum of the individual techniques.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Figure 16: combined sequential wakeup + sequential "
           "register access",
           "Kim & Lipasti, ISCA 2003, Figure 16");
    uint64_t budget = instBudget();

    WorkloadCache cache;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        row("bench",
            {"base IPC", "combined", "seq-wkup", "seq-RF"}, 10, 12);
        std::vector<double> ncomb;
        for (const auto &name : workloads::benchmarkNames()) {
            const auto &w = cache.get(name);
            auto base = runSim(w, sim::baseMachine(width).cfg, budget);
            auto comb_machine = sim::withRegfile(
                sim::withWakeup(sim::baseMachine(width),
                                core::WakeupModel::Sequential, 1024),
                core::RegfileModel::SequentialAccess);
            auto comb = runSim(w, comb_machine.cfg, budget);
            auto sw = runSim(
                w,
                sim::withWakeup(sim::baseMachine(width),
                                core::WakeupModel::Sequential, 1024)
                    .cfg,
                budget);
            auto sq = runSim(
                w,
                sim::withRegfile(sim::baseMachine(width),
                                 core::RegfileModel::SequentialAccess)
                    .cfg,
                budget);
            double b = base->ipc();
            ncomb.push_back(comb->ipc() / b);
            row(name,
                {fmt(b, 3), fmt(comb->ipc() / b, 4),
                 fmt(sw->ipc() / b, 4), fmt(sq->ipc() / b, 4)});
        }
        row("geomean", {"", fmt(geomean(ncomb), 4), "", ""});
    }
    std::printf("\nPaper: 2.2%% mean degradation, worst case 4.8%%; "
                "combined slightly worse than the sum of parts.\n");
    return 0;
}
