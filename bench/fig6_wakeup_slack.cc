/**
 * @file
 * Figure 6: slack (in cycles) between the two operand wakeups of
 * 2-pending-source instructions. The paper reports <3% simultaneous
 * (slack 0) wakeups — the only case sequential wakeup always
 * penalizes.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Figure 6: slack between two operand wakeups",
           "Kim & Lipasti, ISCA 2003, Figure 6 (paper: <3% of "
           "instructions wake both operands in the same cycle)",
           budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u})
        for (const auto &name : names)
            jobs.push_back(
                job(name, sim::Machine::base(width), budget));
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide base machine ---\n", width);
        Table t({"bench", "slack 0", "slack 1", "slack 2", "slack 3",
                 "slack 4+", "0/all-2src"},
                10, 11);
        for (const auto &name : names) {
            const auto &st = res[k++].coreStats();
            const auto &d = st.wakeupSlack;
            // Simultaneous wakeups as a fraction of all 2-source
            // instructions (the paper's "<3% of instructions").
            double all2src = double(st.fmtTwoUnique.value()
                                    ? st.fmtTwoUnique.value() : 1);
            t.begin(name)
                .pct(d.fraction(0))
                .pct(d.fraction(1))
                .pct(d.fraction(2))
                .pct(d.fraction(3))
                .pct(d.fraction(4))
                .pct(double(d.bucket(0)) / all2src)
                .end();
        }
    }
    return 0;
}
