/**
 * @file
 * Table 2: base-machine IPC of every benchmark on the 4-wide and
 * 8-wide configurations. Absolute values differ from the paper (the
 * workloads are substitutes), but the cross-benchmark shape should
 * hold: mcf/parser-like pointer codes at the bottom, vortex-like
 * regular codes at the top, and the 8-wide machine ahead of the
 * 4-wide machine everywhere.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Table 2: benchmarks and base IPC",
           "Kim & Lipasti, ISCA 2003, Table 2");
    uint64_t budget = instBudget();
    std::printf("committed instructions per run: %llu\n\n",
                static_cast<unsigned long long>(budget));

    WorkloadCache cache;
    row("bench", {"insts", "IPC 4-wide", "IPC 8-wide"});
    for (const auto &name : workloads::benchmarkNames()) {
        const auto &w = cache.get(name);
        auto s4 = runSim(w, sim::baseMachine(4).cfg, budget);
        auto s8 = runSim(w, sim::baseMachine(8).cfg, budget);
        row(name,
            {std::to_string(s4->core().stats().committed.value()),
             fmt(s4->ipc(), 2), fmt(s8->ipc(), 2)});
    }
    std::printf("\nPaper (Table 2, SPEC CINT2000): 4-wide IPC "
                "0.71(mcf)..2.02(vortex), 8-wide 0.93..2.95.\n");
    return 0;
}
