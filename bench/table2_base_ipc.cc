/**
 * @file
 * Table 2: base-machine IPC of every benchmark on the 4-wide and
 * 8-wide configurations. Absolute values differ from the paper (the
 * workloads are substitutes), but the cross-benchmark shape should
 * hold: mcf/parser-like pointer codes at the bottom, vortex-like
 * regular codes at the top, and the 8-wide machine ahead of the
 * 4-wide machine everywhere.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Table 2: benchmarks and base IPC",
           "Kim & Lipasti, ISCA 2003, Table 2", budget);
    std::printf("\n");

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names) {
        jobs.push_back(job(name, sim::Machine::base(4), budget));
        jobs.push_back(job(name, sim::Machine::base(8), budget));
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    Table t({"bench", "insts", "IPC 4-wide", "IPC 8-wide"});
    for (const auto &name : names) {
        const auto &s4 = res[k++];
        const auto &s8 = res[k++];
        t.begin(name)
            .count(s4.committed)
            .abs(s4.ipc, 2)
            .abs(s8.ipc, 2)
            .end();
    }
    std::printf("\nPaper (Table 2, SPEC CINT2000): 4-wide IPC "
                "0.71(mcf)..2.02(vortex), 8-wide 0.93..2.95.\n");
    return 0;
}
