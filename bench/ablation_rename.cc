/**
 * @file
 * Ablation (Section 6 future work): half-price *renaming*. The map
 * table is read once per source operand; this harness halves the
 * rename lookup ports (2W -> W) and measures the dispatch-group
 * splits and IPC cost, with and without the other half-price
 * techniques stacked on top — the "operand-centric" end point the
 * paper sketches.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Ablation: half-price register renaming (future work)",
           "Kim & Lipasti, ISCA 2003, Section 6", budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u}) {
        sim::Machine base = sim::Machine::base(width);
        sim::Machine rn = sim::Machine::base(width).rename(
            core::RenameModel::HalfPort);
        // Everything halved: wakeup + register file + rename.
        sim::Machine all =
            sim::Machine::base(width)
                .wakeup(core::WakeupModel::Sequential)
                .lap(1024)
                .regfile(core::RegfileModel::SequentialAccess)
                .rename(core::RenameModel::HalfPort);
        for (const auto &name : names) {
            jobs.push_back(job(name, base, budget));
            jobs.push_back(job(name, rn, budget));
            jobs.push_back(job(name, all, budget));
        }
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        Table t({"bench", "half-rename", "all-half", "splits/kinst"},
                10, 13);
        for (const auto &name : names) {
            double b = res[k].ipc;
            const auto &rn = res[k + 1];
            const auto &all = res[k + 2];
            k += 3;
            const auto &st = rn.coreStats();
            double splits = 1000.0 * double(st.renameStalls.value())
                / double(st.committed.value());
            t.begin(name)
                .norm(rn.ipc / b)
                .norm(all.ipc / b)
                .abs(splits, 2)
                .end();
        }
        t.geomeanRow();
    }
    std::printf("\n(all-half: sequential wakeup + sequential register "
                "access + half rename ports)\n");
    return 0;
}
