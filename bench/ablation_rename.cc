/**
 * @file
 * Ablation (Section 6 future work): half-price *renaming*. The map
 * table is read once per source operand; this harness halves the
 * rename lookup ports (2W -> W) and measures the dispatch-group
 * splits and IPC cost, with and without the other half-price
 * techniques stacked on top — the "operand-centric" end point the
 * paper sketches.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Ablation: half-price register renaming (future work)",
           "Kim & Lipasti, ISCA 2003, Section 6");
    uint64_t budget = instBudget();

    WorkloadCache cache;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        row("bench",
            {"half-rename", "all-half", "splits/kinst"}, 10, 13);
        std::vector<double> nrn, nall;
        for (const auto &name : workloads::benchmarkNames()) {
            const auto &w = cache.get(name);
            auto base = runSim(w, sim::baseMachine(width).cfg, budget);
            auto rn = runSim(
                w,
                sim::withRename(sim::baseMachine(width),
                                core::RenameModel::HalfPort)
                    .cfg,
                budget);
            // Everything halved: wakeup + register file + rename.
            auto all_machine = sim::withRename(
                sim::withRegfile(
                    sim::withWakeup(sim::baseMachine(width),
                                    core::WakeupModel::Sequential,
                                    1024),
                    core::RegfileModel::SequentialAccess),
                core::RenameModel::HalfPort);
            auto all = runSim(w, all_machine.cfg, budget);

            double b = base->ipc();
            nrn.push_back(rn->ipc() / b);
            nall.push_back(all->ipc() / b);
            double splits =
                1000.0 * double(rn->core().stats().renameStalls.value())
                / double(rn->core().stats().committed.value());
            row(name,
                {fmt(rn->ipc() / b, 4), fmt(all->ipc() / b, 4),
                 fmt(splits, 2)},
                10, 13);
        }
        row("geomean",
            {fmt(geomean(nrn), 4), fmt(geomean(nall), 4), ""}, 10, 13);
    }
    std::printf("\n(all-half: sequential wakeup + sequential register "
                "access + half rename ports)\n");
    return 0;
}
