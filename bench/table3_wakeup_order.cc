/**
 * @file
 * Table 3: stability of operand wakeup order (same/different as the
 * previous dynamic instance of the same PC) and the left/right
 * distribution of last-arriving operands. The paper finds ~90% same
 * order but a near-uniform left/right split — motivating a
 * history-based predictor.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Table 3: operand wakeup order and last-arriving operand",
           "Kim & Lipasti, ISCA 2003, Table 3 (paper: ~81-99% same "
           "order; left/right roughly balanced)",
           budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u})
        for (const auto &name : names)
            jobs.push_back(
                job(name, sim::Machine::base(width), budget));
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide base machine ---\n", width);
        Table t({"bench", "same", "diff", "left last", "right last"});
        for (const auto &name : names) {
            const auto &st = res[k++].coreStats();
            double order = double(st.orderSame.value()
                                  + st.orderDiff.value());
            double lastn = double(st.leftLast.value()
                                  + st.rightLast.value());
            if (order == 0)
                order = 1;
            if (lastn == 0)
                lastn = 1;
            t.begin(name)
                .pct(double(st.orderSame.value()) / order)
                .pct(double(st.orderDiff.value()) / order)
                .pct(double(st.leftLast.value()) / lastn)
                .pct(double(st.rightLast.value()) / lastn)
                .end();
        }
    }
    return 0;
}
