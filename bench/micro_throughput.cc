/**
 * @file
 * Simulator-throughput micro-benchmark: simulated cycles per second
 * of wall time for the timing core itself, per workload and machine
 * width. This is the host-side figure of merit for the scheduler
 * hot path (ready-list select, indexed consumer/store lists) — IPC
 * measures the modeled machine, cycles/sec measures the simulator.
 *
 * RunResult.wallSeconds measures Core::run() only; workload assembly
 * and functional fast-forward are excluded. Runs serially (one
 * worker) so per-run wall times are undistorted.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Micro: simulator throughput (simulated cycles/sec)",
           "host-side figure of merit, not a paper experiment",
           budget);

    const auto names = workloads::benchmarkNames();
    for (unsigned width : {4u, 8u}) {
        std::vector<sim::SweepJob> jobs;
        for (const auto &name : names)
            jobs.push_back(
                job(name, sim::Machine::base(width), budget));
        auto res = sim::SweepRunner(1).run(std::move(jobs));

        std::printf("\n--- %u-wide base machine ---\n", width);
        Table t({"bench", "sim cycles", "wall ms", "Mcycles/s",
                 "Minsts/s"});
        double total_cycles = 0, total_secs = 0, total_insts = 0;
        for (size_t i = 0; i < names.size(); ++i) {
            const auto &r = res[i];
            total_cycles += double(r.cycles);
            total_secs += r.wallSeconds;
            total_insts += double(r.committed);
            t.begin(names[i])
                .count(r.cycles)
                .abs(1e3 * r.wallSeconds, 2)
                .abs(r.cyclesPerSec() / 1e6, 3)
                .abs(double(r.committed) / r.wallSeconds / 1e6, 3)
                .end();
        }
        t.begin("total")
            .count(uint64_t(total_cycles))
            .abs(1e3 * total_secs, 2)
            .abs(total_cycles / total_secs / 1e6, 3)
            .abs(total_insts / total_secs / 1e6, 3)
            .end();
    }
    return 0;
}
