/**
 * @file
 * Simulator-throughput micro-benchmark: simulated cycles per second
 * of wall time for the timing core itself, per workload and machine
 * width. This is the host-side figure of merit for the scheduler
 * hot path (ready/issued bit planes, dependency-matrix wakeup) — IPC
 * measures the modeled machine, cycles/sec measures the simulator.
 *
 * RunResult.wallSeconds measures Core::run() only; workload assembly
 * and functional fast-forward are excluded. Runs serially (one
 * worker) so per-run wall times are undistorted. With batching
 * (`--batch B`, default auto) each batch's wall time is attributed
 * to its lanes proportionally to simulated cycles, so per-lane
 * cycles/sec stays the comparable figure of merit at any batch
 * size.
 *
 * `--policy sched=X,rf=Y` pins the scheduler and register-file
 * policies by registry key; either value may be `all`, which expands
 * that axis to every registered policy. Combined with
 * `--sched-engine both` this sweeps the full policy zoo on both the
 * masked and the reference scheduler engine — the `perf` ctest label
 * runs exactly that, so every zoo policy's hot path is timed on both
 * engines, not just the paper four. With a single combo the output
 * is the detailed per-workload table; a multi-combo sweep prints one
 * summary row per combo.
 *
 * `--json FILE` additionally writes the measurements as one
 * "hpa.micro-throughput.v2" document — the batch size, the per-lane
 * throughput mean, and per-run (per-lane) cycles/sec — so CI (the
 * `perf` ctest label) and tools/compare_bench.py can track
 * throughput over time. In sweep mode each run also carries its
 * machine name and engine, which keeps compare_bench.py's
 * machine|workload run keys unique across combos.
 */

#include <fstream>
#include <string>

#include "bench_util.hh"
#include "core/policy_registry.hh"
#include "stats/json.hh"

using namespace hpa;
using namespace hpa::benchutil;

namespace
{

/** One point of the policy x engine sweep. Empty policy string =
 *  the base machine's default for that axis. */
struct Combo
{
    std::string sched;
    std::string rf;
    core::SchedEngine engine;

    std::string
    label() const
    {
        std::string s = "sched=";
        s += sched.empty() ? "base" : sched;
        s += ",rf=";
        s += rf.empty() ? "base" : rf;
        s += ",engine=";
        s += core::schedEngineName(engine);
        return s;
    }
};

/** Expand one `--policy` axis value: "" = default, "all" = every
 *  registered key, anything else = that single key (validated later
 *  by MachineBuilder, which throws listing the registry). */
template <typename Table>
std::vector<std::string>
expandAxis(const std::string &v, const Table &table)
{
    std::vector<std::string> out;
    if (v == "all") {
        for (const auto &p : table)
            out.push_back(p.name);
    } else {
        out.push_back(v);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_out;
    unsigned batch = 0;
    std::string sched_policy;
    std::string rf_policy;
    std::string engine_opt = "masked";
    bool bad_cli = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_out = argv[++i];
        } else if (a == "--batch" && i + 1 < argc) {
            batch = unsigned(std::strtoul(argv[++i], nullptr, 10));
        } else if (a == "--sched-policy" && i + 1 < argc) {
            sched_policy = argv[++i];
        } else if (a == "--rf-policy" && i + 1 < argc) {
            rf_policy = argv[++i];
        } else if (a == "--sched-engine" && i + 1 < argc) {
            engine_opt = argv[++i];
        } else if (a == "--policy" && i + 1 < argc) {
            // k=v pairs, comma-separated: sched=X,rf=Y. Either value
            // may be "all" (expand to the full registry).
            std::string spec = argv[++i];
            size_t pos = 0;
            while (pos <= spec.size() && !bad_cli) {
                size_t comma = spec.find(',', pos);
                std::string kv = spec.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                size_t eq = kv.find('=');
                std::string k = kv.substr(0, eq);
                std::string v =
                    eq == std::string::npos ? "" : kv.substr(eq + 1);
                if (eq == std::string::npos || v.empty()) {
                    std::fprintf(stderr,
                                 "--policy: malformed pair '%s' "
                                 "(want sched=X,rf=Y)\n",
                                 kv.c_str());
                    bad_cli = true;
                } else if (k == "sched") {
                    sched_policy = v;
                } else if (k == "rf") {
                    rf_policy = v;
                } else {
                    std::fprintf(stderr,
                                 "--policy: unknown axis '%s' "
                                 "(want sched or rf)\n",
                                 k.c_str());
                    bad_cli = true;
                }
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else {
            bad_cli = true;
        }
        if (bad_cli) {
            std::fprintf(
                stderr,
                "usage: micro_throughput [--batch B] "
                "[--policy sched=X,rf=Y] "
                "[--sched-engine masked|reference|both] "
                "[--sched-policy P] [--rf-policy P] "
                "[--json FILE]\n"
                "  scheduler policies (or 'all'): %s\n"
                "  register-file policies (or 'all'): %s\n",
                core::schedPolicyNames().c_str(),
                core::rfPolicyNames().c_str());
            return 2;
        }
    }

    std::vector<core::SchedEngine> engines;
    if (engine_opt == "both") {
        engines = {core::SchedEngine::Masked,
                   core::SchedEngine::Reference};
    } else {
        core::SchedEngine e;
        if (!core::parseSchedEngine(engine_opt, e)) {
            std::fprintf(stderr,
                         "--sched-engine expects masked | reference "
                         "| both\n");
            return 2;
        }
        engines = {e};
    }

    std::vector<Combo> combos;
    for (const auto &s :
         expandAxis(sched_policy, core::schedPolicies()))
        for (const auto &r : expandAxis(rf_policy, core::rfPolicies()))
            for (core::SchedEngine e : engines)
                combos.push_back(Combo{s, r, e});
    const bool sweep_mode = combos.size() > 1;

    uint64_t budget = instBudget();
    banner("Micro: simulator throughput (simulated cycles/sec)",
           "host-side figure of merit, not a paper experiment",
           budget);

    struct Sample
    {
        unsigned width;
        std::string bench;
        std::string machine;
        std::string engine;
        uint64_t cycles;
        uint64_t committed;
        double wallSeconds;
        double cyclesPerSec;
    };
    std::vector<Sample> samples;

    std::printf("batched replay: %u lanes%s\n",
                sim::SweepRunner::resolveBatch(batch),
                batch == 0 ? " (auto)" : "");
    if (sweep_mode)
        std::printf("policy sweep: %zu combos "
                    "(per-combo totals below)\n",
                    combos.size());

    const auto names = workloads::benchmarkNames();
    const std::vector<unsigned> widths = {4u, 8u};

    // Per-combo summary rows, printed as one table after the sweep
    // (the Table ctor prints its header, so defer construction).
    struct ComboRow
    {
        std::string label;
        double cycles, secs;
    };
    std::vector<ComboRow> combo_rows;
    double grand_cycles = 0, grand_secs = 0;
    size_t batches_formed = 0;
    for (const Combo &combo : combos) {
        // One sweep per combo over both widths so cells sharing a
        // workload trace can actually batch (the engine groups by
        // workload; each group holds the 4-wide and 8-wide lanes).
        std::vector<sim::SweepJob> jobs;
        std::vector<std::string> machine_names;
        for (unsigned width : widths) {
            // Policy overrides go through the string registry, so an
            // unknown name fails fast listing the registered keys.
            auto b = sim::Machine::base(width);
            try {
                if (!combo.sched.empty())
                    b.schedPolicy(combo.sched);
                if (!combo.rf.empty())
                    b.rfPolicy(combo.rf);
            } catch (const std::invalid_argument &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return 2;
            }
            b.schedEngine(combo.engine);
            sim::Machine m = b.build();
            machine_names.push_back(m.name);
            for (const auto &name : names) {
                jobs.push_back(job(name, m, budget));
                jobs.back().batch = batch;
            }
        }
        sim::SweepRunner runner(1);
        auto all = runner.run(std::move(jobs));
        batches_formed += runner.batchesFormed();

        double combo_cycles = 0, combo_secs = 0;
        for (size_t wi = 0; wi < widths.size(); ++wi) {
            unsigned width = widths[wi];
            const sim::SweepResult *res =
                all.data() + wi * names.size();

            double total_cycles = 0, total_secs = 0, total_insts = 0;
            for (size_t i = 0; i < names.size(); ++i) {
                const auto &r = res[i];
                total_cycles += double(r.cycles);
                total_secs += r.wallSeconds;
                total_insts += double(r.committed);
                samples.push_back(
                    Sample{width, names[i], machine_names[wi],
                           core::schedEngineName(combo.engine),
                           r.cycles, r.committed, r.wallSeconds,
                           r.cyclesPerSec()});
            }
            if (!sweep_mode) {
                // Single combo: the detailed per-workload table.
                std::printf("\n--- %u-wide base machine ---\n",
                            width);
                Table t({"bench", "sim cycles", "wall ms",
                         "Mcycles/s", "Minsts/s"});
                for (size_t i = 0; i < names.size(); ++i) {
                    const auto &r = res[i];
                    t.begin(names[i])
                        .count(r.cycles)
                        .abs(1e3 * r.wallSeconds, 2)
                        .abs(r.cyclesPerSec() / 1e6, 3)
                        .abs(double(r.committed) / r.wallSeconds
                                 / 1e6,
                             3)
                        .end();
                }
                t.begin("total")
                    .count(uint64_t(total_cycles))
                    .abs(1e3 * total_secs, 2)
                    .abs(total_cycles / total_secs / 1e6, 3)
                    .abs(total_insts / total_secs / 1e6, 3)
                    .end();
            }
            combo_cycles += total_cycles;
            combo_secs += total_secs;
        }
        if (sweep_mode)
            combo_rows.push_back(
                ComboRow{combo.label(), combo_cycles, combo_secs});
        grand_cycles += combo_cycles;
        grand_secs += combo_secs;
    }
    if (sweep_mode) {
        std::printf("\n");
        Table t({"combo", "sim cycles", "wall ms", "Mcycles/s"}, 50);
        for (const auto &r : combo_rows)
            t.begin(r.label)
                .count(uint64_t(r.cycles))
                .abs(1e3 * r.secs, 2)
                .abs(r.cycles / r.secs / 1e6, 3)
                .end();
        std::printf("aggregate: %.3f Mcycles/s over %zu runs\n",
                    grand_cycles / grand_secs / 1e6, samples.size());
    }

    if (!json_out.empty()) {
        std::ofstream os(json_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_out.c_str());
            return 1;
        }
        double lane_sum = 0;
        for (const auto &s : samples)
            lane_sum += s.cyclesPerSec;
        stats::json::JsonWriter jw(os);
        jw.beginObject()
            .kv("schema", "hpa.micro-throughput.v2")
            .kv("insts_per_run", budget)
            .kv("batch",
                uint64_t(sim::SweepRunner::resolveBatch(batch)))
            .kv("batches_formed", uint64_t(batches_formed))
            .kv("total_simulated_cycles", uint64_t(grand_cycles))
            .kv("total_wall_seconds", grand_secs, 4)
            .kv("aggregate_cycles_per_sec",
                grand_secs > 0 ? grand_cycles / grand_secs : 0.0, 0)
            // Mean per-lane throughput: each run's wall share is its
            // cycle-proportional slice of its batch, so this tracks
            // the per-config replay rate independent of batch width.
            .kv("lane_cycles_per_sec",
                samples.empty() ? 0.0
                                : lane_sum / double(samples.size()),
                0)
            .key("runs")
            .beginArray();
        for (const auto &s : samples) {
            jw.beginObject();
            // In sweep mode the same width|workload pair recurs once
            // per combo; the machine name + engine disambiguate (and
            // switch compare_bench.py to machine|workload keys).
            if (sweep_mode) {
                jw.kv("machine", s.machine)
                    .kv("engine", s.engine);
            }
            jw.kv("width", uint64_t(s.width))
                .kv("workload", s.bench)
                .kv("cycles", s.cycles)
                .kv("committed", s.committed)
                .kv("wall_seconds", s.wallSeconds, 4)
                .kv("cycles_per_sec", s.cyclesPerSec, 0)
                .endObject();
        }
        jw.endArray().endObject();
        std::printf("\nwrote %s\n", json_out.c_str());
    }
    return 0;
}
