/**
 * @file
 * Simulator-throughput micro-benchmark: simulated cycles per second
 * of wall time for the timing core itself, per workload and machine
 * width. This is the host-side figure of merit for the scheduler
 * hot path (ready-list select, indexed consumer/store lists) — IPC
 * measures the modeled machine, cycles/sec measures the simulator.
 *
 * The timing loop measures Core::run() only; workload assembly and
 * functional fast-forward are excluded.
 */

#include <chrono>

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Micro: simulator throughput (simulated cycles/sec)",
           "host-side figure of merit, not a paper experiment",
           budget);

    WorkloadCache cache;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide base machine ---\n", width);
        row("bench",
            {"sim cycles", "wall ms", "Mcycles/s", "Minsts/s"},
            10, 12);
        double total_cycles = 0, total_secs = 0, total_insts = 0;
        for (const auto &name : workloads::benchmarkNames()) {
            const auto &w = cache.get(name);
            uint64_t ff = 0;
            auto it = w.program.symbols.find("steady");
            if (it != w.program.symbols.end())
                ff = it->second;
            sim::Simulation s(w.program, sim::baseMachine(width).cfg,
                              budget, ff);
            auto t0 = std::chrono::steady_clock::now();
            s.run();
            auto t1 = std::chrono::steady_clock::now();
            double secs =
                std::chrono::duration<double>(t1 - t0).count();
            double cycles = double(s.core().cycle());
            double insts =
                double(s.core().stats().committed.value());
            total_cycles += cycles;
            total_secs += secs;
            total_insts += insts;
            row(name,
                {std::to_string(uint64_t(cycles)),
                 fmt(1e3 * secs, 2), fmt(cycles / secs / 1e6, 3),
                 fmt(insts / secs / 1e6, 3)});
        }
        row("total",
            {std::to_string(uint64_t(total_cycles)),
             fmt(1e3 * total_secs, 2),
             fmt(total_cycles / total_secs / 1e6, 3),
             fmt(total_insts / total_secs / 1e6, 3)});
    }
    return 0;
}
