/**
 * @file
 * Simulator-throughput micro-benchmark: simulated cycles per second
 * of wall time for the timing core itself, per workload and machine
 * width. This is the host-side figure of merit for the scheduler
 * hot path (ready-list select, indexed consumer/store lists) — IPC
 * measures the modeled machine, cycles/sec measures the simulator.
 *
 * RunResult.wallSeconds measures Core::run() only; workload assembly
 * and functional fast-forward are excluded. Runs serially (one
 * worker) so per-run wall times are undistorted. With batching
 * (`--batch B`, default auto) each batch's wall time is attributed
 * to its lanes proportionally to simulated cycles, so per-lane
 * cycles/sec stays the comparable figure of merit at any batch
 * size.
 *
 * `--json FILE` additionally writes the measurements as one
 * "hpa.micro-throughput.v2" document — the batch size, the per-lane
 * throughput mean, and per-run (per-lane) cycles/sec — so CI (the
 * `perf` ctest label) and tools/compare_bench.py can track
 * throughput over time.
 */

#include <fstream>
#include <string>

#include "bench_util.hh"
#include "core/policy_registry.hh"
#include "stats/json.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main(int argc, char **argv)
{
    std::string json_out;
    unsigned batch = 0;
    std::string sched_policy;
    std::string rf_policy;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_out = argv[++i];
        } else if (a == "--batch" && i + 1 < argc) {
            batch = unsigned(std::strtoul(argv[++i], nullptr, 10));
        } else if (a == "--sched-policy" && i + 1 < argc) {
            sched_policy = argv[++i];
        } else if (a == "--rf-policy" && i + 1 < argc) {
            rf_policy = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: micro_throughput [--batch B] "
                         "[--sched-policy P] [--rf-policy P] "
                         "[--json FILE]\n"
                         "  scheduler policies: %s\n"
                         "  register-file policies: %s\n",
                         core::schedPolicyNames().c_str(),
                         core::rfPolicyNames().c_str());
            return 2;
        }
    }

    uint64_t budget = instBudget();
    banner("Micro: simulator throughput (simulated cycles/sec)",
           "host-side figure of merit, not a paper experiment",
           budget);

    struct Sample
    {
        unsigned width;
        std::string bench;
        uint64_t cycles;
        uint64_t committed;
        double wallSeconds;
        double cyclesPerSec;
    };
    std::vector<Sample> samples;

    std::printf("batched replay: %u lanes%s\n",
                sim::SweepRunner::resolveBatch(batch),
                batch == 0 ? " (auto)" : "");

    // One sweep over both widths so cells sharing a workload trace
    // can actually batch (the engine groups by workload; each group
    // here holds the 4-wide and 8-wide lanes).
    const auto names = workloads::benchmarkNames();
    const std::vector<unsigned> widths = {4u, 8u};
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : widths) {
        // Policy overrides go through the string registry, so an
        // unknown name fails fast listing the registered keys.
        auto b = sim::Machine::base(width);
        try {
            if (!sched_policy.empty())
                b.schedPolicy(sched_policy);
            if (!rf_policy.empty())
                b.rfPolicy(rf_policy);
        } catch (const std::invalid_argument &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
        for (const auto &name : names) {
            jobs.push_back(job(name, b, budget));
            jobs.back().batch = batch;
        }
    }
    sim::SweepRunner runner(1);
    auto all = runner.run(std::move(jobs));
    size_t batches_formed = runner.batchesFormed();

    double grand_cycles = 0, grand_secs = 0;
    for (size_t wi = 0; wi < widths.size(); ++wi) {
        unsigned width = widths[wi];
        const sim::SweepResult *res = all.data() + wi * names.size();

        std::printf("\n--- %u-wide base machine ---\n", width);
        Table t({"bench", "sim cycles", "wall ms", "Mcycles/s",
                 "Minsts/s"});
        double total_cycles = 0, total_secs = 0, total_insts = 0;
        for (size_t i = 0; i < names.size(); ++i) {
            const auto &r = res[i];
            total_cycles += double(r.cycles);
            total_secs += r.wallSeconds;
            total_insts += double(r.committed);
            samples.push_back(Sample{width, names[i], r.cycles,
                                     r.committed, r.wallSeconds,
                                     r.cyclesPerSec()});
            t.begin(names[i])
                .count(r.cycles)
                .abs(1e3 * r.wallSeconds, 2)
                .abs(r.cyclesPerSec() / 1e6, 3)
                .abs(double(r.committed) / r.wallSeconds / 1e6, 3)
                .end();
        }
        t.begin("total")
            .count(uint64_t(total_cycles))
            .abs(1e3 * total_secs, 2)
            .abs(total_cycles / total_secs / 1e6, 3)
            .abs(total_insts / total_secs / 1e6, 3)
            .end();
        grand_cycles += total_cycles;
        grand_secs += total_secs;
    }

    if (!json_out.empty()) {
        std::ofstream os(json_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_out.c_str());
            return 1;
        }
        double lane_sum = 0;
        for (const auto &s : samples)
            lane_sum += s.cyclesPerSec;
        stats::json::JsonWriter jw(os);
        jw.beginObject()
            .kv("schema", "hpa.micro-throughput.v2")
            .kv("insts_per_run", budget)
            .kv("batch",
                uint64_t(sim::SweepRunner::resolveBatch(batch)))
            .kv("batches_formed", uint64_t(batches_formed))
            .kv("total_simulated_cycles", uint64_t(grand_cycles))
            .kv("total_wall_seconds", grand_secs, 4)
            .kv("aggregate_cycles_per_sec",
                grand_secs > 0 ? grand_cycles / grand_secs : 0.0, 0)
            // Mean per-lane throughput: each run's wall share is its
            // cycle-proportional slice of its batch, so this tracks
            // the per-config replay rate independent of batch width.
            .kv("lane_cycles_per_sec",
                samples.empty() ? 0.0
                                : lane_sum / double(samples.size()),
                0)
            .key("runs")
            .beginArray();
        for (const auto &s : samples) {
            jw.beginObject()
                .kv("width", uint64_t(s.width))
                .kv("workload", s.bench)
                .kv("cycles", s.cycles)
                .kv("committed", s.committed)
                .kv("wall_seconds", s.wallSeconds, 4)
                .kv("cycles_per_sec", s.cyclesPerSec, 0)
                .endObject();
        }
        jw.endArray().endObject();
        std::printf("\nwrote %s\n", json_out.c_str());
    }
    return 0;
}
