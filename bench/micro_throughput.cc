/**
 * @file
 * Simulator-throughput micro-benchmark: simulated cycles per second
 * of wall time for the timing core itself, per workload and machine
 * width. This is the host-side figure of merit for the scheduler
 * hot path (ready-list select, indexed consumer/store lists) — IPC
 * measures the modeled machine, cycles/sec measures the simulator.
 *
 * RunResult.wallSeconds measures Core::run() only; workload assembly
 * and functional fast-forward are excluded. Runs serially (one
 * worker) so per-run wall times are undistorted.
 *
 * `--json FILE` additionally writes the measurements as one
 * "hpa.micro-throughput.v1" document so CI (the `perf` ctest label)
 * and tools/compare_bench.py can track throughput over time.
 */

#include <fstream>
#include <string>

#include "bench_util.hh"
#include "stats/json.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main(int argc, char **argv)
{
    std::string json_out;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: micro_throughput [--json FILE]\n");
            return 2;
        }
    }

    uint64_t budget = instBudget();
    banner("Micro: simulator throughput (simulated cycles/sec)",
           "host-side figure of merit, not a paper experiment",
           budget);

    struct Sample
    {
        unsigned width;
        std::string bench;
        uint64_t cycles;
        uint64_t committed;
        double wallSeconds;
        double cyclesPerSec;
    };
    std::vector<Sample> samples;

    const auto names = workloads::benchmarkNames();
    double grand_cycles = 0, grand_secs = 0;
    for (unsigned width : {4u, 8u}) {
        std::vector<sim::SweepJob> jobs;
        for (const auto &name : names)
            jobs.push_back(
                job(name, sim::Machine::base(width), budget));
        auto res = sim::SweepRunner(1).run(std::move(jobs));

        std::printf("\n--- %u-wide base machine ---\n", width);
        Table t({"bench", "sim cycles", "wall ms", "Mcycles/s",
                 "Minsts/s"});
        double total_cycles = 0, total_secs = 0, total_insts = 0;
        for (size_t i = 0; i < names.size(); ++i) {
            const auto &r = res[i];
            total_cycles += double(r.cycles);
            total_secs += r.wallSeconds;
            total_insts += double(r.committed);
            samples.push_back(Sample{width, names[i], r.cycles,
                                     r.committed, r.wallSeconds,
                                     r.cyclesPerSec()});
            t.begin(names[i])
                .count(r.cycles)
                .abs(1e3 * r.wallSeconds, 2)
                .abs(r.cyclesPerSec() / 1e6, 3)
                .abs(double(r.committed) / r.wallSeconds / 1e6, 3)
                .end();
        }
        t.begin("total")
            .count(uint64_t(total_cycles))
            .abs(1e3 * total_secs, 2)
            .abs(total_cycles / total_secs / 1e6, 3)
            .abs(total_insts / total_secs / 1e6, 3)
            .end();
        grand_cycles += total_cycles;
        grand_secs += total_secs;
    }

    if (!json_out.empty()) {
        std::ofstream os(json_out);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_out.c_str());
            return 1;
        }
        stats::json::JsonWriter jw(os);
        jw.beginObject()
            .kv("schema", "hpa.micro-throughput.v1")
            .kv("insts_per_run", budget)
            .kv("total_simulated_cycles", uint64_t(grand_cycles))
            .kv("total_wall_seconds", grand_secs, 4)
            .kv("aggregate_cycles_per_sec",
                grand_secs > 0 ? grand_cycles / grand_secs : 0.0, 0)
            .key("runs")
            .beginArray();
        for (const auto &s : samples) {
            jw.beginObject()
                .kv("width", uint64_t(s.width))
                .kv("workload", s.bench)
                .kv("cycles", s.cycles)
                .kv("committed", s.committed)
                .kv("wall_seconds", s.wallSeconds, 4)
                .kv("cycles_per_sec", s.cyclesPerSec, 0)
                .endObject();
        }
        jw.endArray().endObject();
        std::printf("\nwrote %s\n", json_out.c_str());
    }
    return 0;
}
