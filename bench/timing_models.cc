/**
 * @file
 * Circuit-delay claims (Sections 3.3 and 4): wakeup-logic delay with
 * one vs. two bus comparators per entry, and register-file access
 * time vs. read-port count, from the calibrated analytical models.
 */

#include <cstdio>

#include "model/timing_models.hh"

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Circuit timing models",
           "Kim & Lipasti, ISCA 2003, Sections 3.3 and 4 "
           "(466->374 ps; 1.71->1.36 ns)");

    model::WakeupDelayModel wd;
    std::printf("\nWakeup logic delay (ps), 0.18u, 4-wide:\n");
    Table tw({"entries", "conv (2 cmp)", "seq (1 cmp)", "speedup"},
             10, 14);
    for (unsigned n : {16u, 32u, 64u, 128u, 256u}) {
        tw.begin(std::to_string(n))
            .abs(wd.delayPs(n, 2), 1)
            .abs(wd.delayPs(n, 1), 1)
            .pct(wd.speedup(n, 2, 1))
            .end();
    }
    std::printf("Paper claim (64-entry, 4-wide): 466 ps -> 374 ps "
                "(24.6%% speedup). Model: %.0f -> %.0f (%.1f%%).\n",
                wd.delayPs(64, 2), wd.delayPs(64, 1),
                100 * wd.speedup(64, 2, 1));

    model::RegfileTimingModel rf;
    std::printf("\nRegister file access time (ns), 160 entries, "
                "0.18u:\n");
    Table tr({"ports", "access ns", "rel. area"}, 10, 14);
    for (unsigned p : {8u, 12u, 16u, 20u, 24u, 32u}) {
        tr.begin(std::to_string(p))
            .abs(rf.accessNs(160, p), 3)
            .abs(rf.area(160, p) / rf.area(160, 16), 3)
            .end();
    }
    std::printf("Paper claim (8-wide, 24 -> 16 ports): 1.71 ns -> "
                "1.36 ns (20.5%% drop). Model: %.2f -> %.2f "
                "(%.1f%%).\n",
                rf.accessNs(160, 24), rf.accessNs(160, 16),
                100 * rf.reduction(160, 24, 16));

    std::printf("\nScaling with window size (sequential-wakeup gain "
                "grows with the window):\n");
    Table ts({"entries", "gain"}, 10, 14);
    for (unsigned n : {32u, 64u, 128u, 256u})
        ts.begin(std::to_string(n)).pct(wd.speedup(n, 2, 1)).end();
    return 0;
}
