/**
 * @file
 * Ablation (Section 4.2): the bypass-window assumption. The paper
 * conservatively assumes a produced value is bypassable for one cycle
 * only; a machine with multi-cycle register-file access could add
 * bypass paths and widen the window, reducing how many 2-source
 * instructions need two register reads. Sweeps the window for the
 * sequential-register-access machine.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Ablation: bypass window vs. sequential register access",
           "Kim & Lipasti, ISCA 2003, Section 4.2 (1-cycle bypass "
           "window assumption)",
           budget);

    const auto names = workloads::benchmarkNames();
    const std::vector<unsigned> windows = {1, 2, 3};
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names) {
        jobs.push_back(job(name, sim::Machine::base(4), budget));
        for (unsigned window : windows)
            jobs.push_back(
                job(name,
                    sim::Machine::base(4)
                        .regfile(core::RegfileModel::SequentialAccess)
                        .bypassWindow(window),
                    budget));
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    Table t({"bench", "w=1 IPC", "w=2 IPC", "w=3 IPC", "seqRA w=1",
             "seqRA w=3"});
    for (const auto &name : names) {
        double b = res[k++].ipc;
        t.begin(name);
        uint64_t seq_ra_w1 = 0, seq_ra_w3 = 0;
        for (unsigned window : windows) {
            const auto &r = res[k++];
            t.norm(r.ipc / b);
            uint64_t seq_ra = r.coreStats().seqRegAccesses.value();
            if (window == 1)
                seq_ra_w1 = seq_ra;
            if (window == 3)
                seq_ra_w3 = seq_ra;
        }
        t.count(seq_ra_w1).count(seq_ra_w3).end();
    }
    t.geomeanRow();
    std::printf("\n(wider windows catch more operands on the bypass, "
                "cutting sequential accesses)\n");
    return 0;
}
