/**
 * @file
 * Ablation (Section 4.2): the bypass-window assumption. The paper
 * conservatively assumes a produced value is bypassable for one cycle
 * only; a machine with multi-cycle register-file access could add
 * bypass paths and widen the window, reducing how many 2-source
 * instructions need two register reads. Sweeps the window for the
 * sequential-register-access machine.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Ablation: bypass window vs. sequential register access",
           "Kim & Lipasti, ISCA 2003, Section 4.2 (1-cycle bypass "
           "window assumption)",
           budget);

    const auto names = workloads::benchmarkNames();
    const std::vector<unsigned> windows = {1, 2, 3};
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names) {
        jobs.push_back(job(name, sim::baseMachine(4), budget));
        for (unsigned window : windows) {
            auto m = sim::withRegfile(
                sim::baseMachine(4),
                core::RegfileModel::SequentialAccess);
            m.cfg.bypass_window = window;
            jobs.push_back(job(name, m, budget));
        }
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    row("bench",
        {"w=1 IPC", "w=2 IPC", "w=3 IPC", "seqRA w=1", "seqRA w=3"},
        10, 12);
    for (const auto &name : names) {
        double b = res[k++].ipc;
        std::vector<std::string> cells;
        uint64_t seq_ra_w1 = 0, seq_ra_w3 = 0;
        for (unsigned window : windows) {
            const auto &r = res[k++];
            cells.push_back(fmt(r.ipc / b, 4));
            uint64_t seq_ra =
                r.sim->core().stats().seqRegAccesses.value();
            if (window == 1)
                seq_ra_w1 = seq_ra;
            if (window == 3)
                seq_ra_w3 = seq_ra;
        }
        cells.push_back(std::to_string(seq_ra_w1));
        cells.push_back(std::to_string(seq_ra_w3));
        row(name, cells, 10, 12);
    }
    std::printf("\n(wider windows catch more operands on the bypass, "
                "cutting sequential accesses)\n");
    return 0;
}
