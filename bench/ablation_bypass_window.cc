/**
 * @file
 * Ablation (Section 4.2): the bypass-window assumption. The paper
 * conservatively assumes a produced value is bypassable for one cycle
 * only; a machine with multi-cycle register-file access could add
 * bypass paths and widen the window, reducing how many 2-source
 * instructions need two register reads. Sweeps the window for the
 * sequential-register-access machine.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Ablation: bypass window vs. sequential register access",
           "Kim & Lipasti, ISCA 2003, Section 4.2 (1-cycle bypass "
           "window assumption)");
    uint64_t budget = instBudget();

    WorkloadCache cache;
    row("bench",
        {"w=1 IPC", "w=2 IPC", "w=3 IPC", "seqRA w=1", "seqRA w=3"},
        10, 12);
    for (const auto &name : workloads::benchmarkNames()) {
        const auto &w = cache.get(name);
        auto base = runSim(w, sim::baseMachine(4).cfg, budget);
        double b = base->ipc();
        std::vector<std::string> cells;
        uint64_t seq_ra_w1 = 0, seq_ra_w3 = 0;
        for (unsigned window : {1u, 2u, 3u}) {
            auto m = sim::withRegfile(
                sim::baseMachine(4),
                core::RegfileModel::SequentialAccess);
            m.cfg.bypass_window = window;
            auto s = runSim(w, m.cfg, budget);
            cells.push_back(fmt(s->ipc() / b, 4));
            if (window == 1)
                seq_ra_w1 = s->core().stats().seqRegAccesses.value();
            if (window == 3)
                seq_ra_w3 = s->core().stats().seqRegAccesses.value();
        }
        cells.push_back(std::to_string(seq_ra_w1));
        cells.push_back(std::to_string(seq_ra_w3));
        row(name, cells, 10, 12);
    }
    std::printf("\n(wider windows catch more operands on the bypass, "
                "cutting sequential accesses)\n");
    return 0;
}
