/**
 * @file
 * Figure 14: IPC of sequential wakeup (with a 1k-entry last-arrival
 * predictor), tag elimination (same predictor), and sequential
 * wakeup without a predictor, normalized to the base machine, on
 * the 4-wide and 8-wide configurations.
 *
 * Paper shape: sequential wakeup ~0.4%/0.6% mean degradation;
 * tag elimination worse (worst case 10.6% on 8-wide crafty);
 * no-predictor sequential wakeup 1.6%/2.6% mean and still often
 * ahead of tag elimination.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Figure 14: performance of sequential wakeup",
           "Kim & Lipasti, ISCA 2003, Figure 14", budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u}) {
        sim::Machine base = sim::Machine::base(width);
        sim::Machine seqw = sim::Machine::base(width)
                                .wakeup(core::WakeupModel::Sequential)
                                .lap(1024);
        sim::Machine te =
            sim::Machine::base(width)
                .wakeup(core::WakeupModel::TagElimination)
                .lap(1024);
        sim::Machine nopred =
            sim::Machine::base(width).wakeup(
                core::WakeupModel::SequentialNoPred);
        for (const auto &name : names) {
            jobs.push_back(job(name, base, budget));
            jobs.push_back(job(name, seqw, budget));
            jobs.push_back(job(name, te, budget));
            jobs.push_back(job(name, nopred, budget));
        }
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        Table t({"bench", "base IPC", "seq-wakeup", "tag-elim",
                 "seq-nopred"});
        for (const auto &name : names) {
            double b = res[k].ipc;
            t.begin(name)
                .abs(b, 3)
                .norm(res[k + 1].ipc / b)
                .norm(res[k + 2].ipc / b)
                .norm(res[k + 3].ipc / b)
                .end();
            k += 4;
        }
        t.geomeanRow();
    }
    std::printf("\nPaper means: seq-wakeup 0.996/0.994, tag-elim "
                "lower (worst 0.894), seq-nopred 0.984/0.974.\n");
    return 0;
}
