/**
 * @file
 * Figure 14: IPC of sequential wakeup (with a 1k-entry last-arrival
 * predictor), tag elimination (same predictor), and sequential
 * wakeup without a predictor, normalized to the base machine, on
 * the 4-wide and 8-wide configurations.
 *
 * Paper shape: sequential wakeup ~0.4%/0.6% mean degradation;
 * tag elimination worse (worst case 10.6% on 8-wide crafty);
 * no-predictor sequential wakeup 1.6%/2.6% mean and still often
 * ahead of tag elimination.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Figure 14: performance of sequential wakeup",
           "Kim & Lipasti, ISCA 2003, Figure 14", budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u}) {
        for (const auto &name : names) {
            jobs.push_back(job(name, sim::baseMachine(width), budget));
            jobs.push_back(job(
                name,
                sim::withWakeup(sim::baseMachine(width),
                                core::WakeupModel::Sequential, 1024),
                budget));
            jobs.push_back(job(
                name,
                sim::withWakeup(sim::baseMachine(width),
                                core::WakeupModel::TagElimination,
                                1024),
                budget));
            jobs.push_back(job(
                name,
                sim::withWakeup(sim::baseMachine(width),
                                core::WakeupModel::SequentialNoPred),
                budget));
        }
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        row("bench",
            {"base IPC", "seq-wakeup", "tag-elim", "seq-nopred"},
            10, 12);
        std::vector<double> nsw, nte, nnp;
        for (const auto &name : names) {
            double b = res[k].ipc;
            double sw = res[k + 1].ipc / b;
            double te = res[k + 2].ipc / b;
            double np = res[k + 3].ipc / b;
            k += 4;
            nsw.push_back(sw);
            nte.push_back(te);
            nnp.push_back(np);
            row(name,
                {fmt(b, 3), fmt(sw, 4), fmt(te, 4), fmt(np, 4)});
        }
        row("geomean",
            {"", fmt(geomean(nsw), 4), fmt(geomean(nte), 4),
             fmt(geomean(nnp), 4)});
    }
    std::printf("\nPaper means: seq-wakeup 0.996/0.994, tag-elim "
                "lower (worst 0.894), seq-nopred 0.984/0.974.\n");
    return 0;
}
