/**
 * @file
 * Figure 3: breakdown of 2-source-format instructions by unique
 * source operands — nops (zero-register destinations, eliminated at
 * decode), instructions with fewer than two unique sources (zero
 * registers / identical operands), and true 2-source instructions.
 * Measured on the functional emulator, one benchmark per
 * sweep-engine worker.
 */

#include "func/emulator.hh"

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget(1000000);
    banner("Figure 3: breakdown of 2-source-format instructions",
           "Kim & Lipasti, ISCA 2003, Figure 3 (paper: 6-23% of all "
           "instructions are true 2-source)",
           budget);

    const auto names = workloads::benchmarkNames();
    struct Counts
    {
        uint64_t nops = 0, one = 0, two = 0, fmt2 = 0, total = 0;
    };
    std::vector<Counts> counts(names.size());
    auto &cache = workloads::globalCache();
    sim::SweepRunner::parallelFor(
        names.size(), sweepJobs(), [&](size_t i) {
            func::Emulator emu(cache.get(names[i]).program);
            Counts &c = counts[i];
            while (!emu.halted() && c.total < budget) {
                auto rec = emu.step();
                ++c.total;
                if (rec.inst.isStore()
                    || !rec.inst.isTwoSourceFormat())
                    continue;
                ++c.fmt2;
                if (rec.inst.isNop())
                    ++c.nops;
                else if (rec.inst.uniqueSrcRegs().count == 2)
                    ++c.two;
                else
                    ++c.one;
            }
        });

    Table t({"bench", "nops", "<2 unique", "2 unique", "2src/all"});
    for (size_t i = 0; i < names.size(); ++i) {
        const Counts &c = counts[i];
        double f = double(c.fmt2 ? c.fmt2 : 1);
        t.begin(names[i])
            .pct(double(c.nops) / f)
            .pct(double(c.one) / f)
            .pct(double(c.two) / f)
            .pct(double(c.two) / double(c.total))
            .end();
    }
    std::printf("\n(last column: true 2-source instructions as a "
                "fraction of all dynamic instructions)\n");
    return 0;
}
