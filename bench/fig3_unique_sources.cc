/**
 * @file
 * Figure 3: breakdown of 2-source-format instructions by unique
 * source operands — nops (zero-register destinations, eliminated at
 * decode), instructions with fewer than two unique sources (zero
 * registers / identical operands), and true 2-source instructions.
 */

#include "func/emulator.hh"

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Figure 3: breakdown of 2-source-format instructions",
           "Kim & Lipasti, ISCA 2003, Figure 3 (paper: 6-23% of all "
           "instructions are true 2-source)");
    uint64_t budget = instBudget(1000000);

    WorkloadCache cache;
    row("bench",
        {"nops", "<2 unique", "2 unique", "2src/all"}, 10, 12);
    for (const auto &name : workloads::benchmarkNames()) {
        const auto &w = cache.get(name);
        func::Emulator emu(w.program);
        uint64_t nops = 0, one = 0, two = 0, fmt2 = 0, total = 0;
        while (!emu.halted() && total < budget) {
            auto rec = emu.step();
            ++total;
            if (rec.inst.isStore() || !rec.inst.isTwoSourceFormat())
                continue;
            ++fmt2;
            if (rec.inst.isNop())
                ++nops;
            else if (rec.inst.uniqueSrcRegs().count == 2)
                ++two;
            else
                ++one;
        }
        double f = double(fmt2 ? fmt2 : 1);
        row(name, {pct(nops / f), pct(one / f), pct(two / f),
                   pct(double(two) / double(total))});
    }
    std::printf("\n(last column: true 2-source instructions as a "
                "fraction of all dynamic instructions)\n");
    return 0;
}
