/**
 * @file
 * Figure 4: number of already-ready operands of 2-source
 * instructions when they are inserted into the scheduler, on the
 * base machines. The paper reports only 4-16% with both operands
 * pending ("0 ready").
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Figure 4: ready operands of 2-source insts at insert",
           "Kim & Lipasti, ISCA 2003, Figure 4 (paper: 4-16% have 0 "
           "ready operands)",
           budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u})
        for (const auto &name : names)
            jobs.push_back(
                job(name, sim::Machine::base(width), budget));
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide base machine ---\n", width);
        Table t({"bench", "0 ready", "1 ready", "2 ready"});
        for (const auto &name : names) {
            const auto &d = res[k++].coreStats().readyAtInsert;
            t.begin(name)
                .pct(d.fraction(0))
                .pct(d.fraction(1))
                .pct(d.fraction(2))
                .end();
        }
    }
    return 0;
}
