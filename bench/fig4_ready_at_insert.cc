/**
 * @file
 * Figure 4: number of already-ready operands of 2-source
 * instructions when they are inserted into the scheduler, on the
 * base machines. The paper reports only 4-16% with both operands
 * pending ("0 ready").
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Figure 4: ready operands of 2-source insts at insert",
           "Kim & Lipasti, ISCA 2003, Figure 4 (paper: 4-16% have 0 "
           "ready operands)");
    uint64_t budget = instBudget();

    WorkloadCache cache;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide base machine ---\n", width);
        row("bench", {"0 ready", "1 ready", "2 ready"});
        for (const auto &name : workloads::benchmarkNames()) {
            auto s = runSim(cache.get(name),
                            sim::baseMachine(width).cfg, budget);
            const auto &d = s->core().stats().readyAtInsert;
            row(name, {pct(d.fraction(0)), pct(d.fraction(1)),
                       pct(d.fraction(2))});
        }
    }
    return 0;
}
