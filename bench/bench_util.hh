/**
 * @file
 * Shared helpers for the experiment harnesses: per-run instruction
 * budgets, cached workload programs, simulation runners and aligned
 * table printing. Every harness regenerates one of the paper's
 * tables or figures; `HPA_INSTS` bounds the committed instructions
 * per timing run (default 200k) so a full sweep stays laptop-sized.
 */

#ifndef HPA_BENCH_BENCH_UTIL_HH
#define HPA_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "workloads/workloads.hh"

namespace hpa::benchutil
{

/** Committed-instruction budget per timing run (HPA_INSTS env). */
inline uint64_t
instBudget(uint64_t def = 200000)
{
    if (const char *s = std::getenv("HPA_INSTS")) {
        uint64_t v = std::strtoull(s, nullptr, 10);
        if (v > 0)
            return v;
    }
    return def;
}

/** Build-once cache of full-scale workload programs. */
class WorkloadCache
{
  public:
    const workloads::Workload &
    get(const std::string &name)
    {
        auto it = cache_.find(name);
        if (it == cache_.end())
            it = cache_
                .emplace(name,
                         workloads::make(name, workloads::Scale::Full))
                .first;
        return it->second;
    }

  private:
    std::map<std::string, workloads::Workload> cache_;
};

/**
 * Run one timing simulation to the instruction budget, fast-forwarding
 * functionally to the kernel's `steady:` label (past data-structure
 * initialization) when the program defines one.
 */
inline std::unique_ptr<sim::Simulation>
runSim(const workloads::Workload &w, const core::CoreConfig &cfg,
       uint64_t budget)
{
    uint64_t ff = 0;
    auto it = w.program.symbols.find("steady");
    if (it != w.program.symbols.end())
        ff = it->second;
    auto s = std::make_unique<sim::Simulation>(w.program, cfg, budget,
                                               ff);
    s->run();
    return s;
}

/** Print the harness banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("==============================================="
                "=====================\n");
}

/** Print one aligned row: name column then fixed-width cells. */
inline void
row(const std::string &name, const std::vector<std::string> &cells,
    int name_w = 10, int cell_w = 12)
{
    std::printf("%-*s", name_w, name.c_str());
    for (const auto &c : cells)
        std::printf("%*s", cell_w, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int prec = 3)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
pct(double v, int prec = 1)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, 100.0 * v);
    return buf;
}

/** Geometric mean of a non-empty vector. */
inline double
geomean(const std::vector<double> &v)
{
    double logsum = 0;
    for (double x : v)
        logsum += std::log(x);
    return std::exp(logsum / double(v.size()));
}

} // namespace hpa::benchutil

#endif // HPA_BENCH_BENCH_UTIL_HH
