/**
 * @file
 * Shared helpers for the experiment harnesses: per-run instruction
 * budgets, cached workload programs, simulation runners and aligned
 * table printing. Every harness regenerates one of the paper's
 * tables or figures; `HPA_INSTS` bounds the committed instructions
 * per timing run (default 200k) so a full sweep stays laptop-sized.
 */

#ifndef HPA_BENCH_BENCH_UTIL_HH
#define HPA_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "sim/sweep.hh"
#include "workloads/workloads.hh"

namespace hpa::benchutil
{

/**
 * Committed-instruction budget per timing run (HPA_INSTS env). A
 * malformed value (empty, signed, trailing junk, zero, overflow) is
 * rejected with a warning and the default is used — a silent
 * strtoull() partial parse would quietly run the wrong experiment.
 */
inline uint64_t
instBudget(uint64_t def = 200000)
{
    const char *s = std::getenv("HPA_INSTS");
    if (!s)
        return def;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    bool bad = end == s || *end != '\0' || errno == ERANGE || v == 0
        || std::strchr(s, '-') != nullptr;
    if (bad) {
        std::fprintf(stderr,
                     "warning: ignoring invalid HPA_INSTS='%s' "
                     "(want a positive integer); using %llu\n",
                     s, static_cast<unsigned long long>(def));
        return def;
    }
    return v;
}

/** Shared build-once workload cache (also used by the sweep engine). */
using workloads::WorkloadCache;

/**
 * Worker threads for the harness sweeps (HPA_JOBS env; unset or 0 =
 * one per hardware thread). Sweep results are deterministic at any
 * thread count, so a malformed value only costs a warning and the
 * default.
 */
inline unsigned
sweepJobs()
{
    const char *s = std::getenv("HPA_JOBS");
    if (!s)
        return 0;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    bool bad = end == s || *end != '\0' || errno == ERANGE || v > 1024
        || std::strchr(s, '-') != nullptr;
    if (bad) {
        std::fprintf(stderr,
                     "warning: ignoring invalid HPA_JOBS='%s' "
                     "(want 0..1024); using one per hardware "
                     "thread\n",
                     s);
        return 0;
    }
    return unsigned(v);
}

/** Build one timing-run job (ExperimentSpec) for the sweep engine. */
inline sim::SweepJob
job(const std::string &workload, const sim::Machine &m,
    uint64_t budget)
{
    sim::SweepJob j;
    j.workload = workload;
    j.machine = m;
    j.max_insts = budget;
    j.validate();
    return j;
}

/**
 * Run a batch of jobs on the sweep engine with HPA_JOBS worker
 * threads; result[i] corresponds to jobs[i], independent of which
 * thread ran it, so harnesses consume results in submission order.
 * The figure harnesses cannot plot partial data, so any failed cell
 * aborts the harness (requireAllOk) with every failure listed.
 */
inline std::vector<sim::SweepResult>
runSweep(std::vector<sim::SweepJob> jobs)
{
    auto results = sim::SweepRunner(sweepJobs()).run(std::move(jobs));
    sim::requireAllOk(results);
    return results;
}

/**
 * Run one timing simulation to the instruction budget, fast-forwarding
 * functionally to the kernel's `steady:` label (past data-structure
 * initialization) when the program defines one.
 */
inline std::unique_ptr<sim::Simulation>
runSim(const workloads::Workload &w, const core::CoreConfig &cfg,
       uint64_t budget)
{
    uint64_t ff = 0;
    auto it = w.program.symbols.find("steady");
    if (it != w.program.symbols.end())
        ff = it->second;
    auto s = std::make_unique<sim::Simulation>(w.program, cfg, budget,
                                               ff);
    s->run();
    return s;
}

/** Print the harness banner. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("==============================================="
                "=====================\n");
}

/** Banner variant reporting the instruction budget actually used. */
inline void
banner(const std::string &what, const std::string &paper_ref,
       uint64_t budget)
{
    banner(what, paper_ref);
    std::printf("committed-instruction budget per run: %llu%s\n",
                static_cast<unsigned long long>(budget),
                std::getenv("HPA_INSTS") ? " (HPA_INSTS)"
                                         : " (default)");
}

/** Print one aligned row: name column then fixed-width cells. */
inline void
row(const std::string &name, const std::vector<std::string> &cells,
    int name_w = 10, int cell_w = 12)
{
    std::printf("%-*s", name_w, name.c_str());
    for (const auto &c : cells)
        std::printf("%*s", cell_w, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, int prec = 3)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
pct(double v, int prec = 1)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, 100.0 * v);
    return buf;
}

/** Geometric mean of a non-empty vector. */
inline double
geomean(const std::vector<double> &v)
{
    double logsum = 0;
    for (double x : v)
        logsum += std::log(x);
    return std::exp(logsum / double(v.size()));
}

/** A ratio fit for norm()/geomean: finite and positive. A zero-IPC
 *  (invalid) run would otherwise put -inf into the geomean's log
 *  sum and poison the whole column. */
inline bool
finiteRatio(double v)
{
    return std::isfinite(v) && v > 0.0;
}

/**
 * Shared experiment-table formatter. Construction prints the header
 * (the first entry labels the row-name column); each data row is a
 * begin()..end() chain of typed cells:
 *
 *   Table t({"bench", "base IPC", "seq-wakeup"});
 *   t.begin(name).abs(base_ipc, 3).norm(r.ipc / base_ipc).end();
 *   t.geomeanRow();
 *
 * norm() cells are remembered per column so geomeanRow() can close
 * the table with the geometric mean of every normalized column
 * (other columns stay blank) — the bookkeeping every figure harness
 * used to hand-roll.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers, int name_w = 10,
                   int cell_w = 12)
        : name_w_(name_w), cell_w_(cell_w),
          samples_(headers.empty() ? 0 : headers.size() - 1)
    {
        std::vector<std::string> cells(
            headers.begin() + (headers.empty() ? 0 : 1),
            headers.end());
        row(headers.empty() ? "" : headers.front(), cells, name_w_,
            cell_w_);
    }

    /** Start a data row. */
    Table &
    begin(const std::string &name)
    {
        std::printf("%-*s", name_w_, name.c_str());
        col_ = 0;
        return *this;
    }

    /** Free-form text cell. */
    Table &
    text(const std::string &s)
    {
        std::printf("%*s", cell_w_, s.c_str());
        ++col_;
        return *this;
    }

    /** Absolute numeric cell (not part of the geomean). */
    Table &
    abs(double v, int prec = 3)
    {
        return text(fmt(v, prec));
    }

    /** Integer cell (not part of the geomean). */
    Table &
    count(uint64_t v)
    {
        return text(std::to_string(v));
    }

    /** Percentage cell (not part of the geomean). */
    Table &
    pct(double v, int prec = 1)
    {
        return text(benchutil::pct(v, prec));
    }

    /** Normalized cell, accumulated for geomeanRow(). A non-finite
     *  or non-positive ratio (zero-IPC baseline or failed run)
     *  prints "n/a" and stays out of the geomean instead of
     *  poisoning it with NaN/Inf. */
    Table &
    norm(double v, int prec = 4)
    {
        if (!finiteRatio(v))
            return text("n/a");
        if (col_ < samples_.size())
            samples_[col_].push_back(v);
        return abs(v, prec);
    }

    /** Finish the row. */
    void end() { std::printf("\n"); }

    /** Geomean row over every norm() column (others blank). */
    void
    geomeanRow(const std::string &label = "geomean", int prec = 4)
    {
        begin(label);
        for (const auto &col : samples_) {
            // Walk columns in order so blanks keep alignment.
            if (col.empty())
                text("");
            else
                abs(geomean(col), prec);
        }
        end();
    }

  private:
    int name_w_;
    int cell_w_;
    size_t col_ = 0;
    std::vector<std::vector<double>> samples_;
};

} // namespace hpa::benchutil

#endif // HPA_BENCH_BENCH_UTIL_HH
