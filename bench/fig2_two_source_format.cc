/**
 * @file
 * Figure 2: percentage of dynamic instructions with a 2-source
 * format, with stores broken out separately. Purely a program
 * property: measured on the functional emulator, one benchmark per
 * sweep-engine worker.
 */

#include "func/emulator.hh"

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget(1000000);
    banner("Figure 2: percentage of 2-source-format instructions",
           "Kim & Lipasti, ISCA 2003, Figure 2 (paper: 18-36% "
           "2-source format)",
           budget);

    const auto names = workloads::benchmarkNames();
    struct Counts
    {
        uint64_t two = 0, stores = 0, total = 0;
    };
    std::vector<Counts> counts(names.size());
    auto &cache = workloads::globalCache();
    sim::SweepRunner::parallelFor(
        names.size(), sweepJobs(), [&](size_t i) {
            func::Emulator emu(cache.get(names[i]).program);
            Counts &c = counts[i];
            while (!emu.halted() && c.total < budget) {
                auto rec = emu.step();
                ++c.total;
                if (rec.inst.isStore())
                    ++c.stores;
                else if (rec.inst.isTwoSourceFormat())
                    ++c.two;
            }
        });

    Table t({"bench", "2-src fmt", "stores", "other"});
    for (size_t i = 0; i < names.size(); ++i) {
        const Counts &c = counts[i];
        double total = double(c.total);
        t.begin(names[i])
            .pct(double(c.two) / total)
            .pct(double(c.stores) / total)
            .pct(double(c.total - c.two - c.stores) / total)
            .end();
    }
    return 0;
}
