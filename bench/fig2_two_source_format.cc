/**
 * @file
 * Figure 2: percentage of dynamic instructions with a 2-source
 * format, with stores broken out separately. Purely a program
 * property: measured on the functional emulator.
 */

#include "func/emulator.hh"

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Figure 2: percentage of 2-source-format instructions",
           "Kim & Lipasti, ISCA 2003, Figure 2 (paper: 18-36% "
           "2-source format)");
    uint64_t budget = instBudget(1000000);

    WorkloadCache cache;
    row("bench", {"2-src fmt", "stores", "other"});
    for (const auto &name : workloads::benchmarkNames()) {
        const auto &w = cache.get(name);
        func::Emulator emu(w.program);
        uint64_t two = 0, stores = 0, total = 0;
        while (!emu.halted() && total < budget) {
            auto rec = emu.step();
            ++total;
            if (rec.inst.isStore())
                ++stores;
            else if (rec.inst.isTwoSourceFormat())
                ++two;
        }
        double t = double(total);
        row(name, {pct(two / t), pct(stores / t),
                   pct((total - two - stores) / t)});
    }
    return 0;
}
