/**
 * @file
 * Figure 10: register-access characterization of 2-source
 * instructions — issued back-to-back with a producer (>=1 operand
 * from the bypass network), both operands ready at insert (2 register
 * reads), or issued non-back-to-back (2 register reads). The paper
 * reports <4% of dynamic instructions needing two read ports.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Figure 10: register accesses of 2-source instructions",
           "Kim & Lipasti, ISCA 2003, Figure 10 (paper: <4% of all "
           "instructions need 2 read ports)",
           budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u})
        for (const auto &name : names)
            jobs.push_back(
                job(name, sim::Machine::base(width), budget));
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide base machine ---\n", width);
        Table t({"bench", "b2b issue", "2 ready", "non-b2b",
                 "2-port/all"});
        for (const auto &name : names) {
            const auto &st = res[k++].coreStats();
            double n = double(st.rfBackToBack.value()
                              + st.rfTwoReady.value()
                              + st.rfNonBackToBack.value());
            if (n == 0)
                n = 1;
            double all = double(st.committed.value());
            double two_port = double(st.rfTwoReady.value()
                                     + st.rfNonBackToBack.value());
            t.begin(name)
                .pct(double(st.rfBackToBack.value()) / n)
                .pct(double(st.rfTwoReady.value()) / n)
                .pct(double(st.rfNonBackToBack.value()) / n)
                .pct(two_port / all)
                .end();
        }
    }
    std::printf("\n(last column: instructions requiring two register "
                "read ports, as a fraction of all commits)\n");
    return 0;
}
