/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's building
 * blocks: cache accesses, branch predictor lookups, emulator
 * stepping, assembler throughput and whole-core cycle throughput.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "bpred/bpred.hh"
#include "core/core.hh"
#include "core/inst_source.hh"
#include "func/emulator.hh"
#include "mem/hierarchy.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hpa;

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache c(mem::CacheConfig{"c", 64 * 1024, 4, 16, 2});
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(addr, false));
        addr += 16384 + 16;   // mix of hits and conflict misses
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyDataAccess(benchmark::State &state)
{
    mem::Hierarchy h;
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.dataAccess(addr, false));
        addr += 64;
    }
}
BENCHMARK(BM_HierarchyDataAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    bpred::BranchPredictor bp;
    auto br = isa::makeBranch(isa::Opcode::BNE, 1, 8);
    uint64_t pc = 0x1000;
    bool t = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bp.predict(pc, br));
        bp.resolve(pc, br, t, pc + 36);
        pc = (pc + 4) & 0xFFFF;
        t = !t;
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_EmulatorStep(benchmark::State &state)
{
    auto w = workloads::make("crafty", workloads::Scale::Full);
    func::Emulator emu(w.program);
    for (auto _ : state) {
        if (emu.halted())
            state.SkipWithError("halted");
        benchmark::DoNotOptimize(emu.step());
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_EmulatorStep);

void
BM_Assembler(benchmark::State &state)
{
    std::string src;
    for (int i = 0; i < 200; ++i)
        src += "add r1, r2, r3\nldq r4, 8(r5)\nbne r1, -2\n";
    for (auto _ : state)
        benchmark::DoNotOptimize(assembler::assemble(src));
    state.SetItemsProcessed(int64_t(state.iterations()) * 600);
}
BENCHMARK(BM_Assembler);

void
BM_CoreTick(benchmark::State &state)
{
    auto w = workloads::make("gzip", workloads::Scale::Full);
    func::Emulator emu(w.program);
    core::EmulatorSource src(emu);
    core::Core c(core::fourWideConfig(), src);
    for (auto _ : state) {
        if (c.done())
            state.SkipWithError("drained");
        c.tick();
    }
    state.counters["insts_per_cycle"] = benchmark::Counter(
        double(c.stats().committed.value()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreTick);

/**
 * The scheduler inner loop in isolation: a dependence-dense
 * synthetic stream on the 8-wide machine keeps the window full, so
 * nearly every tick pays wakeup broadcasts plus the age-ordered
 * select scan rather than fetch or memory. Arg selects the engine
 * (0 = masked bit planes, 1 = reference chains) — the pair
 * quantifies exactly the structure the sched_engine knob swaps.
 */
void
BM_WakeupSelect(benchmark::State &state)
{
    core::CoreConfig cfg = core::eightWideConfig();
    cfg.sched_engine = state.range(0) == 0
        ? core::SchedEngine::Masked
        : core::SchedEngine::Reference;
    core::SyntheticParams p;
    p.num_insts = uint64_t(1) << 40; // never drains in-bench
    p.two_source_frac = 0.6;         // dense wakeup traffic
    p.dep_distance_p = 0.5;          // short dependence distances
    p.load_frac = 0.1;
    p.store_frac = 0.05;
    p.branch_frac = 0.05;
    core::SyntheticSource src(p);
    core::Core c(cfg, src);
    for (auto _ : state)
        c.tick();
    state.counters["issued_per_cycle"] = benchmark::Counter(
        double(c.stats().issued.value()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WakeupSelect)
    ->Arg(0)->Arg(1)
    ->ArgName("engine");

void
BM_WorkloadBuild(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(
            workloads::make("bzip", workloads::Scale::Full));
}
BENCHMARK(BM_WorkloadBuild);

} // namespace

BENCHMARK_MAIN();
