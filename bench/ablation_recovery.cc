/**
 * @file
 * Ablation (Section 3.1 discussion): scheduling-recovery style vs.
 * wakeup scheme. Sequential wakeup needs no recovery of its own and
 * composes with selective replay; tag elimination leans on
 * non-selective recovery and its mis-schedules squash independent
 * instructions. This harness quantifies squashed issue slots and
 * IPC for each (wakeup x recovery) pair.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Ablation: recovery model vs. wakeup scheme",
           "Kim & Lipasti, ISCA 2003, Section 3.1 (selective "
           "recovery compatibility)",
           budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names) {
        jobs.push_back(job(name, sim::baseMachine(4), budget));
        jobs.push_back(job(
            name,
            sim::withRecovery(sim::baseMachine(4),
                              core::RecoveryModel::Selective),
            budget));
        jobs.push_back(job(
            name,
            sim::withRecovery(
                sim::withWakeup(sim::baseMachine(4),
                                core::WakeupModel::Sequential, 1024),
                core::RecoveryModel::Selective),
            budget));
        jobs.push_back(job(
            name,
            sim::withWakeup(sim::baseMachine(4),
                            core::WakeupModel::TagElimination, 1024),
            budget));
    }
    auto res = runSweep(std::move(jobs));

    auto squash_pct = [](const sim::SweepResult &r) {
        const auto &st = r.sim->core().stats();
        return double(st.squashedIssues.value())
            / double(st.issued.value() ? st.issued.value() : 1);
    };

    size_t k = 0;
    row("bench",
        {"conv/nsel", "conv/sel", "seqw/sel", "te/nsel",
         "te-squash%", "sw-squash%"},
        10, 12);
    for (const auto &name : names) {
        double b = res[k].ipc;
        const auto &conv_sel = res[k + 1];
        const auto &sw_sel = res[k + 2];
        const auto &te = res[k + 3];
        k += 4;
        row(name,
            {fmt(1.0, 3), fmt(conv_sel.ipc / b, 4),
             fmt(sw_sel.ipc / b, 4), fmt(te.ipc / b, 4),
             pct(squash_pct(te)), pct(squash_pct(sw_sel))},
            10, 12);
    }
    std::printf("\n(seqw/sel: sequential wakeup on selective "
                "recovery — the composition tag elimination cannot "
                "offer; squash%%: share of issue slots wasted)\n");
    return 0;
}
