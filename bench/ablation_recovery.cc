/**
 * @file
 * Ablation (Section 3.1 discussion): scheduling-recovery style vs.
 * wakeup scheme. Sequential wakeup needs no recovery of its own and
 * composes with selective replay; tag elimination leans on
 * non-selective recovery and its mis-schedules squash independent
 * instructions. This harness quantifies squashed issue slots and
 * IPC for each (wakeup x recovery) pair.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Ablation: recovery model vs. wakeup scheme",
           "Kim & Lipasti, ISCA 2003, Section 3.1 (selective "
           "recovery compatibility)",
           budget);

    const auto names = workloads::benchmarkNames();
    sim::Machine base = sim::Machine::base(4);
    sim::Machine conv_sel =
        sim::Machine::base(4).recovery(core::RecoveryModel::Selective);
    sim::Machine sw_sel = sim::Machine::base(4)
                              .wakeup(core::WakeupModel::Sequential)
                              .lap(1024)
                              .recovery(core::RecoveryModel::Selective);
    sim::Machine te = sim::Machine::base(4)
                          .wakeup(core::WakeupModel::TagElimination)
                          .lap(1024);
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names) {
        jobs.push_back(job(name, base, budget));
        jobs.push_back(job(name, conv_sel, budget));
        jobs.push_back(job(name, sw_sel, budget));
        jobs.push_back(job(name, te, budget));
    }
    auto res = runSweep(std::move(jobs));

    auto squash_pct = [](const sim::SweepResult &r) {
        const auto &st = r.coreStats();
        return double(st.squashedIssues.value())
            / double(st.issued.value() ? st.issued.value() : 1);
    };

    size_t k = 0;
    Table t({"bench", "conv/nsel", "conv/sel", "seqw/sel", "te/nsel",
             "te-squash%", "sw-squash%"});
    for (const auto &name : names) {
        double b = res[k].ipc;
        const auto &conv_sel_r = res[k + 1];
        const auto &sw_sel_r = res[k + 2];
        const auto &te_r = res[k + 3];
        k += 4;
        t.begin(name)
            .abs(1.0, 3)
            .norm(conv_sel_r.ipc / b)
            .norm(sw_sel_r.ipc / b)
            .norm(te_r.ipc / b)
            .pct(squash_pct(te_r))
            .pct(squash_pct(sw_sel_r))
            .end();
    }
    t.geomeanRow();
    std::printf("\n(seqw/sel: sequential wakeup on selective "
                "recovery — the composition tag elimination cannot "
                "offer; squash%%: share of issue slots wasted)\n");
    return 0;
}
