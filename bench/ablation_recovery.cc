/**
 * @file
 * Ablation (Section 3.1 discussion): scheduling-recovery style vs.
 * wakeup scheme. Sequential wakeup needs no recovery of its own and
 * composes with selective replay; tag elimination leans on
 * non-selective recovery and its mis-schedules squash independent
 * instructions. This harness quantifies squashed issue slots and
 * IPC for each (wakeup x recovery) pair.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Ablation: recovery model vs. wakeup scheme",
           "Kim & Lipasti, ISCA 2003, Section 3.1 (selective "
           "recovery compatibility)");
    uint64_t budget = instBudget();

    WorkloadCache cache;
    row("bench",
        {"conv/nsel", "conv/sel", "seqw/sel", "te/nsel",
         "te-squash%", "sw-squash%"},
        10, 12);
    for (const auto &name : workloads::benchmarkNames()) {
        const auto &w = cache.get(name);
        auto base = runSim(w, sim::baseMachine(4).cfg, budget);

        auto conv_sel = runSim(
            w,
            sim::withRecovery(sim::baseMachine(4),
                              core::RecoveryModel::Selective)
                .cfg,
            budget);
        auto sw_sel = runSim(
            w,
            sim::withRecovery(
                sim::withWakeup(sim::baseMachine(4),
                                core::WakeupModel::Sequential, 1024),
                core::RecoveryModel::Selective)
                .cfg,
            budget);
        auto te = runSim(
            w,
            sim::withWakeup(sim::baseMachine(4),
                            core::WakeupModel::TagElimination, 1024)
                .cfg,
            budget);

        double b = base->ipc();
        auto squash_pct = [](sim::Simulation &s) {
            const auto &st = s.core().stats();
            return double(st.squashedIssues.value())
                / double(st.issued.value() ? st.issued.value() : 1);
        };
        row(name,
            {fmt(1.0, 3), fmt(conv_sel->ipc() / b, 4),
             fmt(sw_sel->ipc() / b, 4), fmt(te->ipc() / b, 4),
             pct(squash_pct(*te)), pct(squash_pct(*sw_sel))},
            10, 12);
    }
    std::printf("\n(seqw/sel: sequential wakeup on selective "
                "recovery — the composition tag elimination cannot "
                "offer; squash%%: share of issue slots wasted)\n");
    return 0;
}
