/**
 * @file
 * Ablation (Sections 3.2/5.1): how the last-arrival predictor table
 * size feeds through to sequential-wakeup IPC. The paper argues
 * sequential wakeup is insensitive to predictor accuracy because a
 * misprediction costs only one slow-bus cycle.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Ablation: predictor size vs. sequential wakeup IPC",
           "Kim & Lipasti, ISCA 2003, Sections 3.2 and 5.1 "
           "(insensitivity to predictor accuracy)",
           budget);

    const auto names = workloads::benchmarkNames();
    const std::vector<unsigned> sizes = {128, 512, 1024, 4096};
    std::vector<sim::SweepJob> jobs;
    for (const auto &name : names) {
        jobs.push_back(job(name, sim::Machine::base(4), budget));
        for (unsigned entries : sizes)
            jobs.push_back(
                job(name,
                    sim::Machine::base(4)
                        .wakeup(core::WakeupModel::Sequential)
                        .lap(entries),
                    budget));
        jobs.push_back(
            job(name,
                sim::Machine::base(4).wakeup(
                    core::WakeupModel::SequentialNoPred),
                budget));
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    Table t({"bench", "128", "512", "1024", "4096", "no pred"}, 10,
            11);
    for (const auto &name : names) {
        double b = res[k++].ipc;
        t.begin(name);
        for (size_t i = 0; i < sizes.size() + 1; ++i)
            t.norm(res[k++].ipc / b);
        t.end();
    }
    t.geomeanRow();
    return 0;
}
