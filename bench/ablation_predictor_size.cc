/**
 * @file
 * Ablation (Sections 3.2/5.1): how the last-arrival predictor table
 * size feeds through to sequential-wakeup IPC. The paper argues
 * sequential wakeup is insensitive to predictor accuracy because a
 * misprediction costs only one slow-bus cycle.
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Ablation: predictor size vs. sequential wakeup IPC",
           "Kim & Lipasti, ISCA 2003, Sections 3.2 and 5.1 "
           "(insensitivity to predictor accuracy)");
    uint64_t budget = instBudget();

    WorkloadCache cache;
    row("bench",
        {"128", "512", "1024", "4096", "no pred"}, 10, 11);
    for (const auto &name : workloads::benchmarkNames()) {
        const auto &w = cache.get(name);
        auto base = runSim(w, sim::baseMachine(4).cfg, budget);
        double b = base->ipc();
        std::vector<std::string> cells;
        for (unsigned entries : {128u, 512u, 1024u, 4096u}) {
            auto s = runSim(
                w,
                sim::withWakeup(sim::baseMachine(4),
                                core::WakeupModel::Sequential,
                                entries)
                    .cfg,
                budget);
            cells.push_back(fmt(s->ipc() / b, 4));
        }
        auto np = runSim(
            w,
            sim::withWakeup(sim::baseMachine(4),
                            core::WakeupModel::SequentialNoPred)
                .cfg,
            budget);
        cells.push_back(fmt(np->ipc() / b, 4));
        row(name, cells, 10, 11);
    }
    return 0;
}
