/**
 * @file
 * Figure 7: accuracy of the PC-indexed bimodal last-arriving operand
 * predictor as the table size sweeps 128..4096 entries, plus the
 * simultaneous-wakeup fraction that can count either way.
 */

#include "core/last_arrival.hh"

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Figure 7: last-arriving operand prediction accuracy",
           "Kim & Lipasti, ISCA 2003, Figure 7 (paper: ~85-97% with "
           "a small bimodal table)",
           budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u})
        for (const auto &name : names)
            jobs.push_back(
                job(name, sim::Machine::base(width), budget));
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide base machine ---\n", width);
        Table t({"bench", "128", "512", "1024", "4096",
                 "simultaneous"},
                10, 13);
        for (const auto &name : names) {
            const auto &mon = res[k++].sim->core().lapMonitor();
            double simul = mon.samples()
                ? double(mon.simultaneous()) / double(mon.samples())
                : 0.0;
            t.begin(name);
            for (unsigned i = 0;
                 i < core::LastArrivalMonitor::NUM_SIZES; ++i)
                t.pct(mon.accuracy(i));
            t.pct(simul).end();
        }
    }
    return 0;
}
