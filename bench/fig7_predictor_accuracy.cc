/**
 * @file
 * Figure 7: accuracy of the PC-indexed bimodal last-arriving operand
 * predictor as the table size sweeps 128..4096 entries, plus the
 * simultaneous-wakeup fraction that can count either way.
 */

#include "core/last_arrival.hh"

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Figure 7: last-arriving operand prediction accuracy",
           "Kim & Lipasti, ISCA 2003, Figure 7 (paper: ~85-97% with "
           "a small bimodal table)");
    uint64_t budget = instBudget();

    WorkloadCache cache;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide base machine ---\n", width);
        row("bench",
            {"128", "512", "1024", "4096", "simultaneous"}, 10, 13);
        for (const auto &name : workloads::benchmarkNames()) {
            auto s = runSim(cache.get(name),
                            sim::baseMachine(width).cfg, budget);
            const auto &mon = s->core().lapMonitor();
            double simul = mon.samples()
                ? double(mon.simultaneous()) / double(mon.samples())
                : 0.0;
            std::vector<std::string> cells;
            for (unsigned i = 0;
                 i < core::LastArrivalMonitor::NUM_SIZES; ++i)
                cells.push_back(pct(mon.accuracy(i)));
            cells.push_back(pct(simul));
            row(name, cells, 10, 13);
        }
    }
    return 0;
}
