/**
 * @file
 * Ablation (Section 5.1): tag elimination "does not scale well with
 * increasing misprediction penalty". Sweeps the scoreboard detection
 * delay (1..4 cycles) for tag elimination and, as a control, shows
 * sequential wakeup is untouched (it has no detection loop at all).
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    banner("Ablation: tag-elimination detection delay",
           "Kim & Lipasti, ISCA 2003, Section 5.1 (penalty scaling)");
    uint64_t budget = instBudget();

    WorkloadCache cache;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        row("bench",
            {"te d=1", "te d=2", "te d=3", "te d=4", "seq-wkup"},
            10, 11);
        std::vector<std::vector<double>> cols(5);
        for (const auto &name : workloads::benchmarkNames()) {
            const auto &w = cache.get(name);
            auto base = runSim(w, sim::baseMachine(width).cfg, budget);
            double b = base->ipc();
            std::vector<std::string> cells;
            unsigned col = 0;
            for (unsigned d = 1; d <= 4; ++d, ++col) {
                auto m = sim::withWakeup(
                    sim::baseMachine(width),
                    core::WakeupModel::TagElimination, 1024);
                m.cfg.tagelim_detect_delay = d;
                auto s = runSim(w, m.cfg, budget);
                cells.push_back(fmt(s->ipc() / b, 4));
                cols[col].push_back(s->ipc() / b);
            }
            auto sw = runSim(
                w,
                sim::withWakeup(sim::baseMachine(width),
                                core::WakeupModel::Sequential, 1024)
                    .cfg,
                budget);
            cells.push_back(fmt(sw->ipc() / b, 4));
            cols[4].push_back(sw->ipc() / b);
            row(name, cells, 10, 11);
        }
        std::vector<std::string> means;
        for (auto &c : cols)
            means.push_back(fmt(geomean(c), 4));
        row("geomean", means, 10, 11);
    }
    return 0;
}
