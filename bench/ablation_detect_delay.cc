/**
 * @file
 * Ablation (Section 5.1): tag elimination "does not scale well with
 * increasing misprediction penalty". Sweeps the scoreboard detection
 * delay (1..4 cycles) for tag elimination and, as a control, shows
 * sequential wakeup is untouched (it has no detection loop at all).
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Ablation: tag-elimination detection delay",
           "Kim & Lipasti, ISCA 2003, Section 5.1 (penalty scaling)",
           budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u}) {
        for (const auto &name : names) {
            jobs.push_back(job(name, sim::baseMachine(width), budget));
            for (unsigned d = 1; d <= 4; ++d) {
                auto m = sim::withWakeup(
                    sim::baseMachine(width),
                    core::WakeupModel::TagElimination, 1024);
                m.cfg.tagelim_detect_delay = d;
                jobs.push_back(job(name, m, budget));
            }
            jobs.push_back(job(
                name,
                sim::withWakeup(sim::baseMachine(width),
                                core::WakeupModel::Sequential, 1024),
                budget));
        }
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        row("bench",
            {"te d=1", "te d=2", "te d=3", "te d=4", "seq-wkup"},
            10, 11);
        std::vector<std::vector<double>> cols(5);
        for (const auto &name : names) {
            double b = res[k++].ipc;
            std::vector<std::string> cells;
            for (unsigned col = 0; col < 5; ++col) {
                double n = res[k++].ipc / b;
                cells.push_back(fmt(n, 4));
                cols[col].push_back(n);
            }
            row(name, cells, 10, 11);
        }
        std::vector<std::string> means;
        for (auto &c : cols)
            means.push_back(fmt(geomean(c), 4));
        row("geomean", means, 10, 11);
    }
    return 0;
}
