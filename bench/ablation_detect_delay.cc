/**
 * @file
 * Ablation (Section 5.1): tag elimination "does not scale well with
 * increasing misprediction penalty". Sweeps the scoreboard detection
 * delay (1..4 cycles) for tag elimination and, as a control, shows
 * sequential wakeup is untouched (it has no detection loop at all).
 */

#include "bench_util.hh"

using namespace hpa;
using namespace hpa::benchutil;

int
main()
{
    uint64_t budget = instBudget();
    banner("Ablation: tag-elimination detection delay",
           "Kim & Lipasti, ISCA 2003, Section 5.1 (penalty scaling)",
           budget);

    const auto names = workloads::benchmarkNames();
    std::vector<sim::SweepJob> jobs;
    for (unsigned width : {4u, 8u}) {
        for (const auto &name : names) {
            jobs.push_back(
                job(name, sim::Machine::base(width), budget));
            for (unsigned d = 1; d <= 4; ++d)
                jobs.push_back(
                    job(name,
                        sim::Machine::base(width)
                            .wakeup(core::WakeupModel::TagElimination)
                            .lap(1024)
                            .detectDelay(d),
                        budget));
            jobs.push_back(
                job(name,
                    sim::Machine::base(width)
                        .wakeup(core::WakeupModel::Sequential)
                        .lap(1024),
                    budget));
        }
    }
    auto res = runSweep(std::move(jobs));

    size_t k = 0;
    for (unsigned width : {4u, 8u}) {
        std::printf("\n--- %u-wide (normalized IPC) ---\n", width);
        Table t({"bench", "te d=1", "te d=2", "te d=3", "te d=4",
                 "seq-wkup"},
                10, 11);
        for (const auto &name : names) {
            double b = res[k++].ipc;
            t.begin(name);
            for (unsigned col = 0; col < 5; ++col)
                t.norm(res[k++].ipc / b);
            t.end();
        }
        t.geomeanRow();
    }
    return 0;
}
